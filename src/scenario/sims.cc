// The seven built-in simulations: adapters from declarative Specs onto the
// module Configs of datacenter/, fl/, mlcycle/, and scaling/.
//
// Conventions shared by every adapter:
//   * params are snake_case and strict — allow_only turns typos into
//     SpecErrors naming the valid keys;
//   * grid sub-objects follow one schema (parse_grid), with catalog lookups
//     erroring as "unknown grid 'x'; available: …";
//   * reports carry physical quantities in base units with unit-suffixed
//     keys (…_j, …_g, …_s, …_w) so consumers can reconstruct the exact
//     doubles the simulators produced.
#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/carbon_intensity.h"
#include "core/lifecycle.h"
#include "core/operational.h"
#include "datacenter/fleet_sim.h"
#include "datacenter/planet_sim.h"
#include "datacenter/queue_sim.h"
#include "datacenter/scheduler.h"
#include "fault/recovery.h"
#include "fl/round_sim.h"
#include "hw/server.h"
#include "hw/spec.h"
#include "mlcycle/model_zoo.h"
#include "mlcycle/reliability.h"
#include "report/csv.h"
#include "report/table.h"
#include "scaling/scaling_grid.h"
#include "scenario/registry.h"

namespace sustainai::scenario {
namespace {

using report::JsonValue;

JsonValue num(double v) { return JsonValue::number(v); }
JsonValue str(std::string s) { return JsonValue::string(std::move(s)); }

// --- Shared grid / job schemas -------------------------------------------

constexpr const char* kGridKeys =
    "name, solar_share, wind_share, firm_share, sunrise_hour, sunset_hour, "
    "seed";

GridProfile profile_by_name(const Spec& spec, const std::string& key,
                            const std::string& fallback) {
  const std::string name = spec.optional_string(key, fallback);
  const std::optional<GridProfile> profile = grids::by_name(name);
  if (!profile.has_value()) {
    throw SpecError(spec.path() + "." + key + ": unknown grid '" + name +
                    "'; available: " + grids::known_names());
  }
  return *profile;
}

hw::DeviceSpec device_by_name(const Spec& spec, const std::string& key,
                              const std::string& fallback) {
  const std::string name = spec.optional_string(key, fallback);
  const std::optional<hw::DeviceSpec> device = hw::catalog::by_name(name);
  if (!device.has_value()) {
    throw SpecError(spec.path() + "." + key + ": unknown device '" + name +
                    "'; available: " + hw::catalog::known_names());
  }
  return *device;
}

// One intermittent-grid sub-object. Defaults model the paper's solar-heavy
// scheduling region (CLI `fleet`/`schedule` defaults).
IntermittentGrid::Config parse_grid(const Spec& grid, std::uint64_t seed) {
  grid.allow_only({"name", "solar_share", "wind_share", "firm_share",
                   "sunrise_hour", "sunset_hour", "seed"});
  IntermittentGrid::Config cfg;
  cfg.profile = profile_by_name(grid, "name", "us-west-solar");
  cfg.solar_share = grid.optional_double_in("solar_share", 0.5, 0.0, 1.0);
  cfg.wind_share = grid.optional_double_in("wind_share", 0.15, 0.0, 1.0);
  cfg.firm_share = grid.optional_double_in("firm_share", 0.10, 0.0, 1.0);
  cfg.sunrise_hour = grid.optional_double_in("sunrise_hour", 6.0, 0.0, 24.0);
  cfg.sunset_hour = grid.optional_double_in("sunset_hour", 18.0, 0.0, 24.0);
  cfg.seed = static_cast<std::uint64_t>(
      grid.optional_int_in("seed", static_cast<long>(seed), 0, 1L << 62));
  return cfg;
}

std::vector<ParamDoc> grid_param_docs(const std::string& prefix) {
  return {
      {prefix + ".name", "string", "us-west-solar",
       "grid profile (" + grids::known_names() + ")"},
      {prefix + ".solar_share", "number", "0.5",
       "peak solar contribution to carbon-free availability"},
      {prefix + ".wind_share", "number", "0.15", "mean wind contribution"},
      {prefix + ".firm_share", "number", "0.1",
       "always-on carbon-free share (hydro/nuclear)"},
      {prefix + ".sunrise_hour", "number", "6", "local sunrise hour"},
      {prefix + ".sunset_hour", "number", "18", "local sunset hour"},
      {prefix + ".seed", "int", "top-level seed",
       "wind-process seed (deterministic)"},
  };
}

// The shared deferrable-job batch: `jobs` identical training jobs arriving
// one per hour modulo `arrival_spread_h` (the CLI `schedule` shape).
std::vector<datacenter::BatchJob> make_jobs(const Spec& params,
                                            const std::string& id_prefix) {
  const long count = params.optional_int_in("jobs", 24, 1, 100000);
  const double power_kw =
      params.optional_double_in("power_kw", 22.4, 0.001, 1e6);
  const double duration_h =
      params.optional_double_in("duration_h", 4.0, 1e-3, 24.0 * 365.0);
  const double slack_h = params.optional_double_in("slack_h", 20.0, 0.0, 1e5);
  const long spread_h = params.optional_int_in("arrival_spread_h", 24, 1, 8760);
  std::vector<datacenter::BatchJob> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (long i = 0; i < count; ++i) {
    datacenter::BatchJob j;
    j.id = id_prefix + std::to_string(i);
    j.power = kilowatts(power_kw);
    j.duration = hours(duration_h);
    j.arrival = hours(static_cast<double>(i % spread_h));
    j.slack = hours(slack_h);
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<ParamDoc> job_param_docs() {
  return {
      {"jobs", "int", "24", "number of deferrable batch jobs"},
      {"power_kw", "number", "22.4", "per-job power draw while running (kW)"},
      {"duration_h", "number", "4", "per-job run length (hours)"},
      {"slack_h", "number", "20", "max start delay within the slack window"},
      {"arrival_spread_h", "int", "24",
       "job i arrives at hour i mod this spread"},
  };
}

// --- Shared fault schema --------------------------------------------------

// The optional `faults` block accepted by every simulation. Absent block =>
// fault injection disabled and the fault-free code paths run untouched.
struct ParsedFaults {
  bool present = false;
  fault::FaultSpec spec;
  double sdc_detection_coverage = 0.0;
};

ParsedFaults parse_faults(const Spec& params, std::uint64_t seed) {
  ParsedFaults out;
  if (!params.has("faults")) {
    return out;
  }
  const Spec f = params.child("faults");
  f.allow_only({"host_crash_per_day", "preemption_per_day", "sdc_per_day",
                "grid_gap_per_day", "crash_rewarm_min", "gap_duration_min",
                "max_retries", "backoff_min", "backoff_multiplier",
                "checkpoint_interval_min", "checkpoint_cost_s",
                "sdc_detection_coverage", "seed"});
  fault::FaultRates& r = out.spec.rates;
  r.host_crash_per_day =
      f.optional_double_in("host_crash_per_day", 0.0, 0.0, 1e4);
  r.preemption_per_day =
      f.optional_double_in("preemption_per_day", 0.0, 0.0, 1e4);
  r.sdc_per_day = f.optional_double_in("sdc_per_day", 0.0, 0.0, 1e4);
  r.grid_gap_per_day = f.optional_double_in("grid_gap_per_day", 0.0, 0.0, 1e4);
  r.crash_rewarm =
      minutes(f.optional_double_in("crash_rewarm_min", 60.0, 0.0, 1e6));
  r.gap_duration =
      minutes(f.optional_double_in("gap_duration_min", 120.0, 0.0, 1e6));
  out.spec.retry.max_retries =
      static_cast<int>(f.optional_int_in("max_retries", 3, 0, 1000000));
  out.spec.retry.base_backoff =
      minutes(f.optional_double_in("backoff_min", 5.0, 0.0, 1e6));
  out.spec.retry.backoff_multiplier =
      f.optional_double_in("backoff_multiplier", 2.0, 1.0, 100.0);
  out.spec.checkpoint.interval =
      minutes(f.optional_double_in("checkpoint_interval_min", 60.0, 0.0, 1e9));
  out.spec.checkpoint.cost =
      seconds(f.optional_double_in("checkpoint_cost_s", 30.0, 0.0, 1e9));
  // Forked off the run seed by default so a spec's fault schedule is stable
  // but never correlated with the simulators' own streams.
  out.spec.seed = static_cast<std::uint64_t>(f.optional_int_in(
      "seed", static_cast<long>(seed ^ 0xfa017ULL), 0, 1L << 62));
  out.sdc_detection_coverage =
      f.optional_double_in("sdc_detection_coverage", 0.0, 0.0, 0.999);
  // An all-zero-rate block is schema-checked but otherwise equivalent to no
  // block at all: the fault-free paths run and the report stays byte-
  // identical to a spec without `faults`.
  out.present = out.spec.enabled();
  return out;
}

std::vector<ParamDoc> fault_param_docs() {
  return {
      {"faults.host_crash_per_day", "number", "0",
       "mean host-crash events per simulated day"},
      {"faults.preemption_per_day", "number", "0",
       "mean job-preemption events per day (queue_schedule)"},
      {"faults.sdc_per_day", "number", "0",
       "mean silent-data-corruption events per day"},
      {"faults.grid_gap_per_day", "number", "0",
       "mean carbon-intensity feed gaps per day"},
      {"faults.crash_rewarm_min", "number", "60",
       "host outage + re-warm length (minutes)"},
      {"faults.gap_duration_min", "number", "120",
       "intensity-feed gap length (minutes)"},
      {"faults.max_retries", "int", "3",
       "restarts allowed before the run fails with error.json"},
      {"faults.backoff_min", "number", "5", "base retry backoff (minutes)"},
      {"faults.backoff_multiplier", "number", "2",
       "exponential backoff growth per retry"},
      {"faults.checkpoint_interval_min", "number", "60",
       "checkpoint cadence (0 = no checkpoints, faults lose all progress)"},
      {"faults.checkpoint_cost_s", "number", "30",
       "overhead per checkpoint (seconds of work)"},
      {"faults.sdc_detection_coverage", "number", "0",
       "fraction of SDCs caught before they poison a run"},
      {"faults.seed", "int", "derived from run seed", "fault-schedule seed"},
  };
}

// Run-level gate for the closed-form simulations (no internal timeline):
// host crashes restart the whole estimate from its last checkpoint. Returns
// the report object; throws fault::RetriesExhaustedError when the crash
// count exceeds the retry budget.
fault::RunGateResult gate_run(const ParsedFaults& parsed, Duration horizon) {
  return fault::evaluate_run_gate(parsed.spec.plan(horizon), horizon,
                                  parsed.spec.checkpoint, parsed.spec.retry);
}

JsonValue gate_report(const fault::RunGateResult& gate, double total_energy_j,
                      const char* energy_key) {
  JsonValue jf = JsonValue::object();
  jf.set("host_crashes", num(static_cast<double>(gate.crashes)));
  jf.set("checkpoints", num(static_cast<double>(gate.checkpoints)));
  jf.set("redone_fraction", num(gate.lost_fraction));
  jf.set("checkpoint_overhead_fraction", num(gate.overhead_fraction));
  jf.set(energy_key, num(gate.lost_fraction * total_energy_j));
  return jf;
}

std::unique_ptr<datacenter::SchedulerPolicy> make_policy(
    const Spec& params, const std::string& name) {
  const double probe_min =
      params.optional_double_in("probe_step_min", 15.0, 0.1, 24.0 * 60.0);
  if (name == "fifo") {
    return std::make_unique<datacenter::FifoPolicy>();
  }
  if (name == "threshold") {
    return std::make_unique<datacenter::ThresholdPolicy>(
        grams_per_kwh(
            params.optional_double_in("threshold_g_per_kwh", 200.0, 0.0, 5000.0)),
        minutes(probe_min));
  }
  if (name == "forecast") {
    return std::make_unique<datacenter::ForecastPolicy>(minutes(probe_min));
  }
  throw SpecError(params.path() +
                  ".policy: unknown policy '" + name +
                  "'; available: fifo, threshold, forecast");
}

// --- shared checkpoint driver --------------------------------------------

// Drives any simulator that follows the engine checkpoint contract
// (start/advance/done/checkpoint_json/parse_checkpoint, plus steps() as a
// stride bound) through a segmented run: resume-or-start, then advance in
// segments, round-tripping the snapshot through canonical JSON at every
// boundary (and handing it to write_snapshot, when set). Returns false when
// stop_after halted the run before completion — the caller then reports a
// stopped RunResult instead of finalizing. Byte-identical to a single
// sim.run() by the checkpoint contract (tests/resume_test.cc).
template <typename Sim>
[[nodiscard]] bool drive_checkpointed(const Sim& sim, const RunContext& ctx,
                                      long param_segments,
                                      typename Sim::Checkpoint& cp) {
  const CheckpointRequest& req = ctx.checkpoint;
  if (!req.resume_text.empty()) {
    cp = sim.parse_checkpoint(report::parse_json(req.resume_text));
  } else {
    cp = sim.start();
  }
  const long segments = std::max(param_segments, req.segments);
  long stride = req.segment_steps > 0
                    ? req.segment_steps
                    : (sim.steps() + segments - 1) / std::max(1L, segments);
  if (stride <= 0) {
    stride = sim.steps();
  }
  long done_segments = 0;
  while (!sim.done(cp)) {
    sim.advance(cp, stride);
    const std::string snapshot =
        report::canonical_json(sim.checkpoint_json(cp));
    if (req.write_snapshot) {
      req.write_snapshot(snapshot);
    }
    cp = sim.parse_checkpoint(report::parse_json(snapshot));
    ++done_segments;
    if (req.stop_after > 0 && done_segments >= req.stop_after &&
        !sim.done(cp)) {
      return false;
    }
  }
  return true;
}

// Shared doc row for the sims that honor checkpoint_segments.
ParamDoc checkpoint_segments_doc() {
  return {"checkpoint_segments", "int", "1",
          "split the run into this many checkpointed segments, round-tripping "
          "the snapshot through canonical JSON between them (byte-identical "
          "to an uninterrupted run by contract)"};
}

// --- fleet ----------------------------------------------------------------

class FleetSimulation final : public Simulation {
 public:
  std::string name() const override { return "fleet"; }

  std::string description() const override {
    return "datacenter fleet over a horizon: diurnal web tier + AI training "
           "tier, autoscaling harvesting off-peak capacity for opportunistic "
           "training, PUE and time-varying grid carbon (Sections III-C, IV-C)";
  }

  std::vector<ParamDoc> params() const override {
    std::vector<ParamDoc> docs = {
        {"days", "number", "7", "simulated horizon in days"},
        {"step_min", "number", "15", "simulation step (minutes)"},
        {"chunk_steps", "int", "256",
         "steps per parallel chunk (determinism-neutral)"},
        {"pue", "number", "1.1", "facility power usage effectiveness"},
        {"cfe", "number", "0", "market-based carbon-free matching share"},
        {"web_servers", "int", "300", "web-tier server count"},
        {"train_servers", "int", "12", "8-GPU training host count"},
        {"train_utilization", "number", "0.5", "flat training-tier load"},
        {"web_load.trough", "number", "0.3", "overnight web utilization"},
        {"web_load.peak", "number", "0.9", "peak web utilization"},
        {"web_load.peak_hour", "number", "20", "local hour of the web peak"},
        {"autoscaler", "bool", "true", "consolidate the web tier off-peak"},
        {"opportunistic", "bool", "true",
         "run offline training on freed web servers"},
        {"opportunistic_utilization", "number", "0.9",
         "utilization of harvested servers"},
        {"use_intensity_table", "bool", "true",
         "serve grid lookups from the prebuilt IntensityTable"},
        checkpoint_segments_doc(),
    };
    for (ParamDoc& d : grid_param_docs("grid")) {
      docs.push_back(std::move(d));
    }
    for (ParamDoc& d : fault_param_docs()) {
      docs.push_back(std::move(d));
    }
    return docs;
  }

  bool supports_checkpoint() const override { return true; }

  RunResult run(const Spec& params, const RunContext& ctx) const override {
    params.allow_only({"days", "step_min", "chunk_steps", "pue", "cfe",
                       "web_servers", "train_servers", "train_utilization",
                       "web_load", "autoscaler", "opportunistic",
                       "opportunistic_utilization", "use_intensity_table",
                       "checkpoint_segments", "grid", "faults"});
    using namespace datacenter;

    const Spec web_load = params.optional_child("web_load");
    web_load.allow_only({"trough", "peak", "peak_hour"});

    Cluster cluster;
    ServerGroup web;
    web.name = "web";
    web.sku = hw::skus::web_tier();
    web.count = static_cast<int>(
        params.optional_int_in("web_servers", 300, 0, 10000000));
    web.tier = Tier::kWeb;
    web.load = DiurnalProfile{
        web_load.optional_double_in("trough", 0.3, 0.0, 1.0),
        web_load.optional_double_in("peak", 0.9, 0.0, 1.0),
        web_load.optional_double_in("peak_hour", 20.0, 0.0, 24.0)};
    web.autoscalable = true;
    cluster.add_group(web);

    ServerGroup train;
    train.name = "train";
    train.sku = hw::skus::gpu_training_8x();
    train.count = static_cast<int>(
        params.optional_int_in("train_servers", 12, 0, 1000000));
    train.tier = Tier::kAiTraining;
    train.load = flat_profile(
        params.optional_double_in("train_utilization", 0.5, 0.0, 1.0));
    cluster.add_group(train);

    FleetSimulator::Config config;
    config.cluster = cluster;
    config.grid = parse_grid(params.optional_child("grid"), ctx.seed);
    config.horizon = days(params.optional_double_in("days", 7.0, 0.01, 3650.0));
    config.step =
        minutes(params.optional_double_in("step_min", 15.0, 0.01, 1440.0));
    config.steps_per_chunk =
        params.optional_int_in("chunk_steps", 256, 1, 1000000);
    config.pue = params.optional_double_in("pue", kHyperscalePue, 1.0, 3.0);
    config.cfe_coverage = params.optional_double_in("cfe", 0.0, 0.0, 1.0);
    config.enable_autoscaler = params.optional_bool("autoscaler", true);
    config.opportunistic_training = params.optional_bool("opportunistic", true);
    config.opportunistic_utilization =
        params.optional_double_in("opportunistic_utilization", 0.90, 0.0, 1.0);
    config.use_intensity_table =
        params.optional_bool("use_intensity_table", true);
    config.pool = ctx.pool;

    const ParsedFaults parsed_faults = parse_faults(params, ctx.seed);
    config.faults = parsed_faults.spec;

    const FleetSimulator sim(config);
    const long segments = params.optional_int_in(
        "checkpoint_segments", 1, 1,
        std::max(1L, sim.steps() / sim.steps_per_chunk()));
    FleetSimulator::Result result;
    if (!ctx.checkpoint.active() && segments <= 1) {
      result = sim.run();
    } else {
      FleetSimulator::Checkpoint cp;
      if (!drive_checkpointed(sim, ctx, segments, cp)) {
        RunResult stopped;
        stopped.scenario = name();
        stopped.stopped = true;
        return stopped;
      }
      result = sim.finalize(cp);
    }

    RunResult out;
    out.scenario = name();
    out.summary_header = {"group", "tier", "IT energy", "mean util",
                          "freed server-h"};
    JsonValue groups = JsonValue::array();
    for (const FleetSimulator::GroupResult& g : result.groups) {
      out.summary_rows.push_back(
          {g.name, to_string(g.tier), to_string(g.it_energy),
           report::fmt(g.mean_utilization), report::fmt(g.freed_server_hours)});
      JsonValue jg = JsonValue::object();
      jg.set("name", str(g.name));
      jg.set("tier", str(to_string(g.tier)));
      jg.set("it_energy_j", num(to_joules(g.it_energy)));
      jg.set("mean_utilization", num(g.mean_utilization));
      jg.set("freed_server_hours", num(g.freed_server_hours));
      groups.append(std::move(jg));
    }
    out.notes = {
        "IT energy:        " + to_string(result.it_energy),
        "facility energy:  " + to_string(result.facility_energy) + " (PUE " +
            report::fmt(config.pue) + ")",
        "location carbon:  " + to_string(result.location_carbon),
        "market carbon:    " + to_string(result.market_carbon),
        "opportunistic:    " + report::fmt(result.opportunistic_server_hours) +
            " server-h, " + to_string(result.opportunistic_energy),
    };

    JsonValue& rep = out.report;
    rep.set("it_energy_j", num(to_joules(result.it_energy)));
    rep.set("facility_energy_j", num(to_joules(result.facility_energy)));
    rep.set("location_carbon_g", num(to_grams_co2e(result.location_carbon)));
    rep.set("market_carbon_g", num(to_grams_co2e(result.market_carbon)));
    rep.set("opportunistic_server_hours",
            num(result.opportunistic_server_hours));
    rep.set("opportunistic_energy_j",
            num(to_joules(result.opportunistic_energy)));
    rep.set("groups", std::move(groups));

    if (parsed_faults.present) {
      const FleetSimulator::FaultStats& fs = result.faults;
      JsonValue jf = JsonValue::object();
      jf.set("host_crashes", num(static_cast<double>(fs.host_crashes)));
      jf.set("sdc_events", num(static_cast<double>(fs.sdc_events)));
      jf.set("grid_gaps", num(static_cast<double>(fs.grid_gaps)));
      jf.set("checkpoints", num(static_cast<double>(fs.checkpoints)));
      jf.set("lost_server_hours", num(fs.lost_server_hours));
      jf.set("redone_work_hours", num(fs.redone_work_hours));
      jf.set("wasted_energy_j", num(to_joules(fs.wasted_energy)));
      jf.set("checkpoint_energy_j", num(to_joules(fs.checkpoint_energy)));
      jf.set("measured_sdc_per_server_year",
             num(fs.measured_sdc_per_server_year));
      // Replacement-age policy re-derived from the SDC rate the fleet
      // actually experienced, instead of the closed-form model input.
      mlcycle::MeasuredSdcRate measured;
      measured.events = fs.sdc_events;
      measured.observed = config.horizon * static_cast<double>(train.count);
      jf.set("optimal_replacement_age_years",
             num(to_years(mlcycle::optimal_age_with_detection(
                 mlcycle::ReplacementPolicyConfig{},
                 parsed_faults.sdc_detection_coverage, measured))));
      rep.set("faults", std::move(jf));
      out.notes.push_back(
          "faults:           " + std::to_string(fs.host_crashes) +
          " crashes, " + std::to_string(fs.sdc_events) + " SDCs, " +
          std::to_string(fs.grid_gaps) + " grid gaps; wasted " +
          to_string(fs.wasted_energy));
    }
    return out;
  }
};

// --- planet ---------------------------------------------------------------

class PlanetSimulation final : public Simulation {
 public:
  std::string name() const override { return "planet"; }

  std::string description() const override {
    return "planetary fleet: N region-fleets (own cluster, grid, PUE, UTC "
           "phase offset, faults) sharded one-region-per-exec-chunk over a "
           "multi-year horizon, with memoized intensity tables and "
           "checkpointed segments (Sections III-C, IV-C at planetary scale)";
  }

  std::vector<ParamDoc> params() const override {
    std::vector<ParamDoc> docs = {
        {"years", "number", "1", "simulated horizon in years (365.25-day)"},
        {"step_min", "number", "60", "simulation step (minutes)"},
        {"chunk_steps", "int", "1024",
         "steps per fleet chunk; also the series window and checkpoint "
         "granule (determinism-neutral)"},
        {"pue", "number", "1.1", "default PUE for regions that omit one"},
        {"cfe", "number", "0", "default market CFE share for regions"},
        {"autoscaler", "bool", "true", "consolidate web tiers off-peak"},
        {"opportunistic", "bool", "true",
         "run offline training on freed web servers"},
        {"opportunistic_utilization", "number", "0.9",
         "utilization of harvested servers"},
        checkpoint_segments_doc(),
        {"regions", "object list", "(required)", "region fleets (see below)"},
        {"regions[i].name", "string", "region-<i>", "region label"},
        {"regions[i].utc_offset_h", "number", "0",
         "local solar time leads UTC by this many hours; must be a whole "
         "number of steps"},
        {"regions[i].pue", "number", "top-level pue", "region PUE"},
        {"regions[i].cfe", "number", "top-level cfe", "region CFE share"},
        {"regions[i].web_servers", "int", "300", "web-tier server count"},
        {"regions[i].train_servers", "int", "12", "8-GPU training hosts"},
        {"regions[i].train_utilization", "number", "0.5",
         "flat training-tier load"},
        {"regions[i].web_load.trough", "number", "0.3",
         "overnight web utilization"},
        {"regions[i].web_load.peak", "number", "0.9", "peak web utilization"},
        {"regions[i].web_load.peak_hour", "number", "20",
         "local hour of the web peak"},
    };
    for (ParamDoc& d : grid_param_docs("regions[i].grid")) {
      docs.push_back(std::move(d));
    }
    // Per-region faults block, same schema as the fleet's top-level one.
    for (ParamDoc& d : fault_param_docs()) {
      d.name = "regions[i]." + d.name;
      docs.push_back(std::move(d));
    }
    return docs;
  }

  bool supports_checkpoint() const override { return true; }

  RunResult run(const Spec& params, const RunContext& ctx) const override {
    params.allow_only({"years", "step_min", "chunk_steps", "pue", "cfe",
                       "autoscaler", "opportunistic",
                       "opportunistic_utilization", "checkpoint_segments",
                       "regions"});
    using namespace datacenter;

    const double default_pue =
        params.optional_double_in("pue", kHyperscalePue, 1.0, 3.0);
    const double default_cfe = params.optional_double_in("cfe", 0.0, 0.0, 1.0);

    PlanetSimulator::Config config;
    config.horizon =
        years(params.optional_double_in("years", 1.0, 0.001, 100.0));
    config.step =
        minutes(params.optional_double_in("step_min", 60.0, 0.01, 1440.0));
    config.steps_per_chunk =
        params.optional_int_in("chunk_steps", 1024, 1, 1000000);
    config.enable_autoscaler = params.optional_bool("autoscaler", true);
    config.opportunistic_training = params.optional_bool("opportunistic", true);
    config.opportunistic_utilization =
        params.optional_double_in("opportunistic_utilization", 0.90, 0.0, 1.0);
    config.pool = ctx.pool;

    const std::vector<Spec> region_specs = params.object_list("regions");
    if (region_specs.empty()) {
      throw SpecError(params.path() + ".regions: need at least one region");
    }
    std::vector<bool> region_faults_present;
    for (std::size_t i = 0; i < region_specs.size(); ++i) {
      const Spec& region = region_specs[i];
      region.allow_only({"name", "grid", "utc_offset_h", "pue", "cfe",
                         "web_servers", "train_servers", "train_utilization",
                         "web_load", "faults"});
      PlanetSimulator::RegionConfig rc;
      rc.name =
          region.optional_string("name", "region-" + std::to_string(i));
      // Same base seed for every region: regions naming the same grid share
      // one physical grid — and therefore one memoized IntensityTable.
      rc.grid = parse_grid(region.optional_child("grid"), ctx.seed);
      rc.utc_offset_hours =
          region.optional_double_in("utc_offset_h", 0.0, 0.0, 24.0);
      rc.pue = region.optional_double_in("pue", default_pue, 1.0, 3.0);
      rc.cfe_coverage = region.optional_double_in("cfe", default_cfe, 0.0, 1.0);

      const Spec web_load = region.optional_child("web_load");
      web_load.allow_only({"trough", "peak", "peak_hour"});
      ServerGroup web;
      web.name = "web";
      web.sku = hw::skus::web_tier();
      web.count = static_cast<int>(
          region.optional_int_in("web_servers", 300, 0, 10000000));
      web.tier = Tier::kWeb;
      web.load = DiurnalProfile{
          web_load.optional_double_in("trough", 0.3, 0.0, 1.0),
          web_load.optional_double_in("peak", 0.9, 0.0, 1.0),
          web_load.optional_double_in("peak_hour", 20.0, 0.0, 24.0)};
      web.autoscalable = true;
      rc.cluster.add_group(web);

      ServerGroup train;
      train.name = "train";
      train.sku = hw::skus::gpu_training_8x();
      train.count = static_cast<int>(
          region.optional_int_in("train_servers", 12, 0, 1000000));
      train.tier = Tier::kAiTraining;
      train.load = flat_profile(
          region.optional_double_in("train_utilization", 0.5, 0.0, 1.0));
      rc.cluster.add_group(train);

      // Per-region fault schedules fork off the run seed by region ordinal
      // so sibling regions never share an event stream.
      const std::uint64_t region_seed =
          ctx.seed ^ (0x51ed2701ULL * static_cast<std::uint64_t>(i + 1));
      const ParsedFaults parsed_faults = parse_faults(region, region_seed);
      rc.faults = parsed_faults.spec;
      region_faults_present.push_back(parsed_faults.present);
      config.regions.push_back(std::move(rc));
    }

    const PlanetSimulator sim(config);
    const long segments = params.optional_int_in(
        "checkpoint_segments", 1, 1,
        std::max(1L, sim.steps() / sim.steps_per_chunk()));
    PlanetSimulator::Result result;
    if (!ctx.checkpoint.active() && segments <= 1) {
      result = sim.run();
    } else {
      PlanetSimulator::Checkpoint cp;
      if (!drive_checkpointed(sim, ctx, segments, cp)) {
        RunResult stopped;
        stopped.scenario = name();
        stopped.stopped = true;
        return stopped;
      }
      result = sim.finalize(cp);
    }

    RunResult out;
    out.scenario = name();
    out.summary_header = {"region", "IT energy", "facility", "location carbon",
                          "market carbon"};
    JsonValue regions = JsonValue::array();
    for (std::size_t r = 0; r < result.regions.size(); ++r) {
      const PlanetSimulator::RegionResult& region = result.regions[r];
      out.summary_rows.push_back(
          {region.name, to_string(region.it_energy),
           to_string(region.facility_energy),
           to_string(region.location_carbon),
           to_string(region.market_carbon)});
      JsonValue jr = JsonValue::object();
      jr.set("name", str(region.name));
      jr.set("it_energy_j", num(to_joules(region.it_energy)));
      jr.set("facility_energy_j", num(to_joules(region.facility_energy)));
      jr.set("location_carbon_g", num(to_grams_co2e(region.location_carbon)));
      jr.set("market_carbon_g", num(to_grams_co2e(region.market_carbon)));
      jr.set("opportunistic_server_hours",
             num(region.opportunistic_server_hours));
      jr.set("opportunistic_energy_j",
             num(to_joules(region.opportunistic_energy)));
      if (region_faults_present[r]) {
        const FleetSimulator::FaultStats& fs = region.faults;
        JsonValue jf = JsonValue::object();
        jf.set("host_crashes", num(static_cast<double>(fs.host_crashes)));
        jf.set("sdc_events", num(static_cast<double>(fs.sdc_events)));
        jf.set("grid_gaps", num(static_cast<double>(fs.grid_gaps)));
        jf.set("checkpoints", num(static_cast<double>(fs.checkpoints)));
        jf.set("lost_server_hours", num(fs.lost_server_hours));
        jf.set("redone_work_hours", num(fs.redone_work_hours));
        jf.set("wasted_energy_j", num(to_joules(fs.wasted_energy)));
        jf.set("checkpoint_energy_j", num(to_joules(fs.checkpoint_energy)));
        jf.set("measured_sdc_per_server_year",
               num(fs.measured_sdc_per_server_year));
        jr.set("faults", std::move(jf));
      }
      regions.append(std::move(jr));
    }

    JsonValue tiers = JsonValue::object();
    for (std::size_t t = 0; t < kNumTiers; ++t) {
      if (to_joules(result.tier_it_energy[t]) == 0.0) {
        continue;
      }
      tiers.set(to_string(static_cast<Tier>(t)),
                num(to_joules(result.tier_it_energy[t])));
    }

    JsonValue& rep = out.report;
    rep.set("it_energy_j", num(to_joules(result.it_energy)));
    rep.set("facility_energy_j", num(to_joules(result.facility_energy)));
    rep.set("location_carbon_g", num(to_grams_co2e(result.location_carbon)));
    rep.set("market_carbon_g", num(to_grams_co2e(result.market_carbon)));
    rep.set("opportunistic_server_hours",
            num(result.opportunistic_server_hours));
    rep.set("opportunistic_energy_j",
            num(to_joules(result.opportunistic_energy)));
    rep.set("tier_it_energy_j", std::move(tiers));
    rep.set("region_count", num(static_cast<double>(sim.region_count())));
    rep.set("distinct_intensity_tables",
            num(static_cast<double>(sim.distinct_intensity_tables())));
    rep.set("checkpoint_segments", num(static_cast<double>(segments)));
    rep.set("regions", std::move(regions));

    report::CsvWriter csv({"t_begin_s", "t_end_s", "facility_energy_j",
                           "location_carbon_g", "intensity_g_per_j"});
    for (const PlanetSimulator::SeriesSample& s : result.series) {
      csv.add_row({report::shortest_double(s.t_begin_s),
                   report::shortest_double(s.t_end_s),
                   report::shortest_double(s.facility_energy_j),
                   report::shortest_double(s.location_carbon_g),
                   report::shortest_double(s.intensity_g_per_j())});
    }
    out.csv_series.emplace_back("planet_series", csv.to_string());

    out.notes = {
        "regions:          " + std::to_string(sim.region_count()) + " (" +
            std::to_string(sim.distinct_intensity_tables()) +
            " distinct intensity tables)",
        "IT energy:        " + to_string(result.it_energy),
        "facility energy:  " + to_string(result.facility_energy),
        "location carbon:  " + to_string(result.location_carbon),
        "market carbon:    " + to_string(result.market_carbon),
        "opportunistic:    " +
            report::fmt(result.opportunistic_server_hours) + " server-h, " +
            to_string(result.opportunistic_energy),
    };
    return out;
  }
};

// --- queue_schedule -------------------------------------------------------

class QueueScheduleSimulation final : public Simulation {
 public:
  std::string name() const override { return "queue_schedule"; }

  std::string description() const override {
    return "capacity-constrained carbon-aware queueing: FIFO vs greedy-green "
           "deferral of batch jobs on a fixed machine pool against a "
           "time-varying grid (Section IV-C)";
  }

  std::vector<ParamDoc> params() const override {
    std::vector<ParamDoc> docs = job_param_docs();
    docs.push_back({"machines", "int", "8", "machine pool size"});
    docs.push_back({"step_min", "number", "15", "queue simulation step"});
    docs.push_back({"pue", "number", "1.1", "facility PUE"});
    docs.push_back({"green_threshold_g_per_kwh", "number", "250",
                    "greedy-green runs while intensity <= threshold"});
    docs.push_back({"max_horizon_days", "number", "60",
                    "abort horizon for overloaded configurations"});
    docs.push_back({"policies", "string list", "[\"fifo\", \"greedy_green\"]",
                    "queue policies to compare (fifo, greedy_green)"});
    docs.push_back(checkpoint_segments_doc());
    for (ParamDoc& d : grid_param_docs("grid")) {
      docs.push_back(std::move(d));
    }
    for (ParamDoc& d : fault_param_docs()) {
      docs.push_back(std::move(d));
    }
    return docs;
  }

  bool supports_checkpoint() const override { return true; }

  RunResult run(const Spec& params, const RunContext& ctx) const override {
    params.allow_only({"jobs", "power_kw", "duration_h", "slack_h",
                       "arrival_spread_h", "machines", "step_min", "pue",
                       "green_threshold_g_per_kwh", "max_horizon_days",
                       "policies", "checkpoint_segments", "grid", "faults"});
    using namespace datacenter;

    QueueSimConfig config;
    config.machines =
        static_cast<int>(params.optional_int_in("machines", 8, 1, 1000000));
    config.grid = parse_grid(params.optional_child("grid"), ctx.seed);
    config.pue = params.optional_double_in("pue", kHyperscalePue, 1.0, 3.0);
    config.step =
        minutes(params.optional_double_in("step_min", 15.0, 0.01, 1440.0));
    config.green_threshold = grams_per_kwh(params.optional_double_in(
        "green_threshold_g_per_kwh", 250.0, 0.0, 5000.0));
    config.max_horizon = days(
        params.optional_double_in("max_horizon_days", 60.0, 0.1, 36500.0));

    const ParsedFaults parsed_faults = parse_faults(params, ctx.seed);
    config.faults = parsed_faults.spec;

    const std::vector<datacenter::BatchJob> jobs = make_jobs(params, "job-");
    const std::vector<std::string> policy_names = params.optional_string_list(
        "policies", {"fifo", "greedy_green"});
    if (policy_names.empty()) {
      throw SpecError(params.path() + ".policies: need at least one policy");
    }
    const long segments =
        params.optional_int_in("checkpoint_segments", 1, 1, 1000000);
    // A snapshot belongs to exactly one (config, policy) pair, so resume /
    // snapshot-writing requests only make sense against a single policy.
    if (ctx.checkpoint.active() && policy_names.size() > 1) {
      throw SpecError(params.path() +
                      ".policies: checkpoint/resume requires a single "
                      "policy (snapshots are per-policy); narrow \"policies\" "
                      "to one entry");
    }

    RunResult out;
    out.scenario = name();
    out.summary_header = {"policy",      "carbon",       "mean wait (h)",
                          "makespan (h)", "utilization", "peak running"};
    JsonValue policies = JsonValue::array();
    for (const std::string& policy_name : policy_names) {
      QueuePolicy policy;
      if (policy_name == "fifo") {
        policy = QueuePolicy::kFifo;
      } else if (policy_name == "greedy_green") {
        policy = QueuePolicy::kGreedyGreen;
      } else {
        throw SpecError(params.path() + ".policies: unknown policy '" +
                        policy_name + "'; available: fifo, greedy_green");
      }
      QueueSimResult r;
      if (!ctx.checkpoint.active() && segments <= 1) {
        r = run_queue_sim(jobs, config, policy);
      } else {
        const QueueSim sim(jobs, config, policy);
        QueueSim::Checkpoint cp;
        if (!drive_checkpointed(sim, ctx, segments, cp)) {
          RunResult stopped;
          stopped.scenario = name();
          stopped.stopped = true;
          return stopped;
        }
        r = sim.finalize(cp);
      }
      out.summary_rows.push_back(
          {r.policy_name, to_string(r.total_carbon),
           report::fmt(to_hours(r.mean_wait)), report::fmt(to_hours(r.makespan)),
           report::fmt_percent(r.utilization), std::to_string(r.peak_running)});

      JsonValue jp = JsonValue::object();
      jp.set("policy", str(r.policy_name));
      jp.set("total_carbon_g", num(to_grams_co2e(r.total_carbon)));
      jp.set("mean_wait_s", num(to_seconds(r.mean_wait)));
      jp.set("makespan_s", num(to_seconds(r.makespan)));
      jp.set("utilization", num(r.utilization));
      jp.set("peak_running", num(static_cast<double>(r.peak_running)));
      jp.set("jobs", num(static_cast<double>(r.jobs.size())));
      if (parsed_faults.present) {
        JsonValue jf = JsonValue::object();
        jf.set("preemptions", num(static_cast<double>(r.preemptions)));
        jf.set("recoveries",
               num(static_cast<double>(r.faults.recoveries)));
        jf.set("checkpoints",
               num(static_cast<double>(r.faults.checkpoints)));
        jf.set("redone_work_hours", num(r.faults.redone_work_hours));
        jf.set("wasted_energy_j", num(to_joules(r.faults.wasted_energy)));
        jf.set("checkpoint_energy_j",
               num(to_joules(r.faults.checkpoint_energy)));
        jp.set("faults", std::move(jf));
      }
      policies.append(std::move(jp));

      report::CsvWriter csv({"id", "arrival_s", "start_s", "finish_s",
                             "wait_s", "carbon_g"});
      for (const CompletedJob& j : r.jobs) {
        csv.add_row({j.job.id, report::shortest_double(to_seconds(j.job.arrival)),
                     report::shortest_double(to_seconds(j.start)),
                     report::shortest_double(to_seconds(j.finish)),
                     report::shortest_double(to_seconds(j.wait())),
                     report::shortest_double(to_grams_co2e(j.carbon))});
      }
      out.csv_series.emplace_back("queue_" + policy_name, csv.to_string());
    }
    out.report.set("machines", num(static_cast<double>(config.machines)));
    out.report.set("policies", std::move(policies));
    return out;
  }
};

// --- cross_region_schedule ------------------------------------------------

class CrossRegionScheduleSimulation final : public Simulation {
 public:
  std::string name() const override { return "cross_region_schedule"; }

  std::string description() const override {
    return "carbon-aware scheduling across candidate regions: each "
           "deferrable job runs in the region and slack-window slot "
           "minimizing its carbon (Section IV-C)";
  }

  std::vector<ParamDoc> params() const override {
    std::vector<ParamDoc> docs = job_param_docs();
    docs.push_back({"policy", "string", "forecast",
                    "slot policy per region (fifo, threshold, forecast)"});
    docs.push_back({"threshold_g_per_kwh", "number", "200",
                    "threshold policy: run below this intensity"});
    docs.push_back({"probe_step_min", "number", "15",
                    "policy probe grid step (minutes)"});
    docs.push_back({"pue", "number", "1.1", "facility PUE"});
    docs.push_back({"regions", "object list", "(required)",
                    "candidate region grids; same schema as `grid`"});
    for (ParamDoc& d : grid_param_docs("regions[i]")) {
      docs.push_back(std::move(d));
    }
    for (ParamDoc& d : fault_param_docs()) {
      docs.push_back(std::move(d));
    }
    return docs;
  }

  RunResult run(const Spec& params, const RunContext& ctx) const override {
    params.allow_only({"jobs", "power_kw", "duration_h", "slack_h",
                       "arrival_spread_h", "policy", "threshold_g_per_kwh",
                       "probe_step_min", "pue", "regions", "faults"});
    using namespace datacenter;

    const std::vector<Spec> region_specs = params.object_list("regions");
    if (region_specs.empty()) {
      throw SpecError(params.path() +
                      ".regions: need at least one region grid");
    }
    std::vector<IntermittentGrid> grids_list;
    std::vector<std::string> region_names;
    grids_list.reserve(region_specs.size());
    for (const Spec& region : region_specs) {
      IntermittentGrid::Config cfg = parse_grid(region, ctx.seed);
      region_names.push_back(cfg.profile.name);
      grids_list.emplace_back(std::move(cfg));
    }

    const std::string policy_name =
        params.optional_string("policy", "forecast");
    const std::unique_ptr<SchedulerPolicy> policy =
        make_policy(params, policy_name);
    const double pue =
        params.optional_double_in("pue", kHyperscalePue, 1.0, 3.0);
    const std::vector<BatchJob> jobs = make_jobs(params, "job-");

    // Run-level fault gate: crashes restart the whole schedule; the gate
    // throws RetriesExhaustedError before the expensive simulation runs.
    const ParsedFaults parsed_faults = parse_faults(params, ctx.seed);
    fault::RunGateResult gate;
    if (parsed_faults.present) {
      Duration horizon;
      for (const BatchJob& j : jobs) {
        const Duration end = j.arrival + j.slack + j.duration;
        if (to_seconds(end) > to_seconds(horizon)) {
          horizon = end;
        }
      }
      gate = gate_run(parsed_faults, horizon);
    }

    const ScheduleResult result =
        run_cross_region_schedule(jobs, grids_list, *policy, pue);

    // Per-region placement counts and carbon (jobs are annotated
    // "<id>@<region>" by the scheduler).
    std::vector<int> region_jobs(grids_list.size(), 0);
    std::vector<CarbonMass> region_carbon(grids_list.size());
    for (const ScheduledJob& j : result.jobs) {
      const std::size_t at = j.job.id.rfind('@');
      const std::string region =
          at == std::string::npos ? "" : j.job.id.substr(at + 1);
      for (std::size_t gi = 0; gi < region_names.size(); ++gi) {
        if (region_names[gi] == region) {
          ++region_jobs[gi];
          region_carbon[gi] += j.carbon;
          break;
        }
      }
    }

    RunResult out;
    out.scenario = name();
    out.summary_header = {"region", "jobs placed", "carbon"};
    JsonValue regions = JsonValue::array();
    for (std::size_t gi = 0; gi < region_names.size(); ++gi) {
      out.summary_rows.push_back({region_names[gi],
                                  std::to_string(region_jobs[gi]),
                                  to_string(region_carbon[gi])});
      JsonValue jr = JsonValue::object();
      jr.set("region", str(region_names[gi]));
      jr.set("jobs", num(static_cast<double>(region_jobs[gi])));
      jr.set("carbon_g", num(to_grams_co2e(region_carbon[gi])));
      regions.append(std::move(jr));
    }
    out.notes = {
        "policy:       " + result.policy_name,
        "total carbon: " + to_string(result.total_carbon),
        "mean delay:   " + report::fmt(to_hours(result.mean_delay)) + " h",
        "peak power:   " + to_string(result.peak_concurrent_power),
    };

    report::CsvWriter csv({"id", "region", "arrival_s", "start_s", "carbon_g"});
    for (const ScheduledJob& j : result.jobs) {
      const std::size_t at = j.job.id.rfind('@');
      csv.add_row({j.job.id.substr(0, at), j.job.id.substr(at + 1),
                   report::shortest_double(to_seconds(j.job.arrival)),
                   report::shortest_double(to_seconds(j.start)),
                   report::shortest_double(to_grams_co2e(j.carbon))});
    }
    out.csv_series.emplace_back("cross_region_jobs", csv.to_string());

    JsonValue& rep = out.report;
    rep.set("policy", str(result.policy_name));
    rep.set("total_carbon_g", num(to_grams_co2e(result.total_carbon)));
    rep.set("mean_delay_s", num(to_seconds(result.mean_delay)));
    rep.set("peak_power_w", num(to_watts(result.peak_concurrent_power)));
    rep.set("regions", std::move(regions));
    if (parsed_faults.present) {
      // Redone schedule slices re-emit carbon in proportion to lost time.
      rep.set("faults", gate_report(gate, to_grams_co2e(result.total_carbon),
                                    "wasted_carbon_g"));
    }
    return out;
  }
};

// --- fl_rounds ------------------------------------------------------------

class FlRoundsSimulation final : public Simulation {
 public:
  std::string name() const override { return "fl_rounds"; }

  std::string description() const override {
    return "federated-learning campaign over a heterogeneous client "
           "population, estimated with the paper's 90-day-log methodology "
           "and compared to centralized baselines (Figure 11, Appendix B)";
  }

  std::vector<ParamDoc> params() const override {
    std::vector<ParamDoc> docs = {
        {"name", "string", "fl-app", "application label"},
        {"clients_per_round", "int", "100", "participants sampled per round"},
        {"rounds_per_day", "number", "24", "round cadence"},
        {"days", "number", "90", "campaign length (days)"},
        {"model_mb", "number", "20", "model size exchanged per round (MB)"},
        {"compute_min", "number", "4",
         "local training minutes on the reference device"},
        {"seed", "int", "23", "round-sampling seed (module default)"},
        {"grid", "string", "us-average",
         "residential grid for the edge estimate (" + grids::known_names() +
             ")"},
        {"device_power_w", "number", "3", "client device power (Appendix B)"},
        {"router_power_w", "number", "7.5", "home router power (Appendix B)"},
        {"include_baselines", "bool", "true",
         "report the Figure 11 centralized baselines"},
        {"population.num_clients", "int", "10000", "population size"},
        {"population.speed_sigma", "number", "0.5",
         "lognormal sigma of client compute speed"},
        {"population.median_download_mbps", "number", "8", "median downlink"},
        {"population.median_upload_mbps", "number", "3", "median uplink"},
        {"population.bandwidth_sigma", "number", "0.7",
         "lognormal sigma of client bandwidth"},
        {"population.dropout_probability", "number", "0.05",
         "per-round client dropout probability"},
        {"population.seed", "int", "17", "population seed (module default)"},
    };
    for (ParamDoc& d : fault_param_docs()) {
      docs.push_back(std::move(d));
    }
    return docs;
  }

  RunResult run(const Spec& params, const RunContext& ctx) const override {
    params.allow_only({"name", "clients_per_round", "rounds_per_day", "days",
                       "model_mb", "compute_min", "seed", "grid",
                       "device_power_w", "router_power_w", "include_baselines",
                       "population", "faults"});
    using namespace fl;

    FlApplicationConfig app;
    app.name = params.optional_string("name", "fl-app");
    app.clients_per_round = static_cast<int>(
        params.optional_int_in("clients_per_round", 100, 1, 10000000));
    app.rounds_per_day =
        params.optional_double_in("rounds_per_day", 24.0, 1e-3, 1e5);
    app.campaign = days(params.optional_double_in("days", 90.0, 0.01, 36500.0));
    app.model_size =
        megabytes(params.optional_double_in("model_mb", 20.0, 1e-6, 1e6));
    app.reference_compute_time =
        minutes(params.optional_double_in("compute_min", 4.0, 1e-3, 1e5));
    app.seed = static_cast<std::uint64_t>(
        params.optional_int_in("seed", 23, 0, 1L << 62));

    const Spec pop = params.optional_child("population");
    pop.allow_only({"num_clients", "speed_sigma", "median_download_mbps",
                    "median_upload_mbps", "bandwidth_sigma",
                    "dropout_probability", "seed"});
    Population::Config population;
    population.num_clients = static_cast<int>(
        pop.optional_int_in("num_clients", 10000, 1, 100000000));
    population.speed_sigma =
        pop.optional_double_in("speed_sigma", 0.5, 0.0, 10.0);
    population.median_download_mbps =
        pop.optional_double_in("median_download_mbps", 8.0, 1e-3, 1e5);
    population.median_upload_mbps =
        pop.optional_double_in("median_upload_mbps", 3.0, 1e-3, 1e5);
    population.bandwidth_sigma =
        pop.optional_double_in("bandwidth_sigma", 0.7, 0.0, 10.0);
    population.dropout_probability =
        pop.optional_double_in("dropout_probability", 0.05, 0.0, 1.0);
    population.seed = static_cast<std::uint64_t>(
        pop.optional_int_in("seed", 17, 0, 1L << 62));

    FlEstimatorAssumptions assumptions = default_fl_assumptions();
    assumptions.grid = profile_by_name(params, "grid", "us-average");
    assumptions.device_power =
        watts(params.optional_double_in("device_power_w", 3.0, 0.0, 1000.0));
    assumptions.router_power =
        watts(params.optional_double_in("router_power_w", 7.5, 0.0, 1000.0));

    // Run-level fault gate over the campaign window (server-side crashes
    // force round re-runs from the last aggregation checkpoint).
    const ParsedFaults parsed_faults = parse_faults(params, ctx.seed);
    fault::RunGateResult gate;
    if (parsed_faults.present) {
      gate = gate_run(parsed_faults, app.campaign);
    }

    const RoundSimulator sim(app, population);
    const std::vector<ClientLogEntry> log = sim.run();
    const FlFootprint fp = estimate_footprint(app.name, log, assumptions);

    RunResult out;
    out.scenario = name();
    out.summary_header = {"metric", "value"};
    out.summary_rows = {
        {"rounds", std::to_string(sim.total_rounds())},
        {"client participations", std::to_string(log.size())},
        {"device compute energy", to_string(fp.compute_energy)},
        {"wireless communication energy", to_string(fp.communication_energy)},
        {"communication share", report::fmt_percent(fp.communication_share())},
        {"energy wasted by dropouts", report::fmt_percent(fp.wasted_fraction)},
        {"carbon", to_string(fp.carbon)},
    };

    JsonValue& rep = out.report;
    rep.set("rounds", num(static_cast<double>(sim.total_rounds())));
    rep.set("log_entries", num(static_cast<double>(log.size())));
    rep.set("compute_energy_j", num(to_joules(fp.compute_energy)));
    rep.set("communication_energy_j", num(to_joules(fp.communication_energy)));
    rep.set("communication_share", num(fp.communication_share()));
    rep.set("wasted_fraction", num(fp.wasted_fraction));
    rep.set("carbon_g", num(to_grams_co2e(fp.carbon)));
    if (parsed_faults.present) {
      rep.set("faults",
              gate_report(gate,
                          to_joules(fp.compute_energy) +
                              to_joules(fp.communication_energy),
                          "wasted_energy_j"));
    }

    if (params.optional_bool("include_baselines", true)) {
      JsonValue baselines = JsonValue::array();
      for (const CentralizedBaseline& base : figure11_baselines()) {
        out.summary_rows.push_back({"baseline " + base.name + " carbon",
                                    to_string(base.carbon)});
        JsonValue jb = JsonValue::object();
        jb.set("name", str(base.name));
        jb.set("training_energy_j", num(to_joules(base.training_energy)));
        jb.set("carbon_g", num(to_grams_co2e(base.carbon)));
        baselines.append(std::move(jb));
      }
      rep.set("baselines", std::move(baselines));
    }
    return out;
  }
};

// --- lifecycle_estimate ---------------------------------------------------

class LifecycleEstimateSimulation final : public Simulation {
 public:
  std::string name() const override { return "lifecycle_estimate"; }

  std::string description() const override {
    return "per-phase lifecycle footprint (Data/Experimentation/Training/"
           "Inference, operational + embodied) of a catalog model or a "
           "custom GPU-day workload (Section II, Figures 3-5)";
  }

  std::vector<ParamDoc> params() const override {
    std::vector<ParamDoc> docs = {
        {"model", "string", "LM",
         "production-model name, or \"custom\" with a custom block"},
        {"device", "string", "v100",
         "reference accelerator (" + hw::catalog::known_names() + ")"},
        {"grid", "string", "us-average", "accounting grid profile"},
        {"pue", "number", "1.1", "facility PUE"},
        {"cfe", "number", "0", "market-based carbon-free matching share"},
        {"utilization", "number", "0.5", "device utilization while training"},
        {"fleet_utilization", "number", "0.45",
         "fleet-average utilization for embodied amortization"},
        {"window_days", "number", "90", "analysis window (days)"},
        {"custom.data_gpu_days", "number", "0", "data-phase GPU-days"},
        {"custom.experimentation_gpu_days", "number", "0",
         "experimentation GPU-days"},
        {"custom.offline_training_gpu_days", "number", "0",
         "offline-training GPU-days"},
        {"custom.online_training_gpu_days", "number", "0",
         "online-training GPU-days"},
        {"custom.inference_gpu_days", "number", "0", "inference GPU-days"},
    };
    for (ParamDoc& d : fault_param_docs()) {
      docs.push_back(std::move(d));
    }
    return docs;
  }

  RunResult run(const Spec& params, const RunContext& ctx) const override {
    params.allow_only({"model", "device", "grid", "pue", "cfe", "utilization",
                       "fleet_utilization", "window_days", "custom",
                       "faults"});
    using namespace mlcycle;

    const Duration window =
        days(params.optional_double_in("window_days", 90.0, 1.0, 36500.0));
    AccountingContext ctx_acct{
        OperationalCarbonModel(
            params.optional_double_in("pue", kHyperscalePue, 1.0, 3.0),
            profile_by_name(params, "grid", "us-average"),
            params.optional_double_in("cfe", 0.0, 0.0, 1.0)),
        device_by_name(params, "device", "v100"),
        params.optional_double_in("utilization", 0.5, 0.0, 1.0),
        params.optional_double_in("fleet_utilization", 0.45, 0.01, 1.0),
        window};

    const ParsedFaults parsed_faults = parse_faults(params, ctx.seed);
    fault::RunGateResult gate;
    if (parsed_faults.present) {
      gate = gate_run(parsed_faults, window);
    }

    const std::string model_name = params.optional_string("model", "LM");
    ProductionModel model;
    if (model_name == "custom") {
      const Spec custom = params.optional_child("custom");
      custom.allow_only({"name", "data_gpu_days", "experimentation_gpu_days",
                         "offline_training_gpu_days", "online_training_gpu_days",
                         "inference_gpu_days"});
      model.name = custom.optional_string("name", "custom-model");
      model.data_gpu_days =
          custom.optional_double_in("data_gpu_days", 0.0, 0.0, 1e9);
      model.experimentation_gpu_days =
          custom.optional_double_in("experimentation_gpu_days", 0.0, 0.0, 1e9);
      model.offline_training_gpu_days = custom.optional_double_in(
          "offline_training_gpu_days", 0.0, 0.0, 1e9);
      model.online_training_gpu_days =
          custom.optional_double_in("online_training_gpu_days", 0.0, 0.0, 1e9);
      model.inference_gpu_days =
          custom.optional_double_in("inference_gpu_days", 0.0, 0.0, 1e9);
    } else {
      bool found = false;
      for (ProductionModel& m : production_models(ctx_acct)) {
        if (m.name == model_name) {
          model = std::move(m);
          found = true;
          break;
        }
      }
      if (!found) {
        std::string names;
        for (const ProductionModel& m : production_models(ctx_acct)) {
          if (!names.empty()) {
            names += ", ";
          }
          names += m.name;
        }
        throw SpecError(params.path() + ".model: unknown model '" +
                        model_name + "'; available: " + names + ", custom");
      }
    }

    const LifecycleFootprint footprint = model.footprint(ctx_acct);

    RunResult out;
    out.scenario = name();
    out.summary_header = {"phase", "energy", "operational", "embodied",
                          "total"};
    JsonValue phases = JsonValue::array();
    for (Phase phase : kAllPhases) {
      const PhaseFootprint& pf = footprint.phase(phase);
      out.summary_rows.push_back(
          {to_string(phase), to_string(pf.energy), to_string(pf.operational),
           to_string(pf.embodied), to_string(pf.total())});
      JsonValue jp = JsonValue::object();
      jp.set("phase", str(to_string(phase)));
      jp.set("energy_j", num(to_joules(pf.energy)));
      jp.set("operational_g", num(to_grams_co2e(pf.operational)));
      jp.set("embodied_g", num(to_grams_co2e(pf.embodied)));
      phases.append(std::move(jp));
    }
    const PhaseFootprint total = footprint.total();
    out.notes = {
        "model:             " + model.name,
        "total energy:      " + to_string(total.energy),
        "total carbon:      " + to_string(total.total()),
        "embodied fraction: " +
            report::fmt_percent(footprint.embodied_fraction()),
    };

    JsonValue& rep = out.report;
    rep.set("model", str(model.name));
    rep.set("total_energy_j", num(to_joules(total.energy)));
    rep.set("total_operational_g", num(to_grams_co2e(total.operational)));
    rep.set("total_embodied_g", num(to_grams_co2e(total.embodied)));
    rep.set("embodied_fraction", num(footprint.embodied_fraction()));
    rep.set("phases", std::move(phases));
    if (parsed_faults.present) {
      rep.set("faults",
              gate_report(gate, to_joules(total.energy), "wasted_energy_j"));
    }
    return out;
  }
};

// --- scaling_sweep --------------------------------------------------------

class ScalingSweepSimulation final : public Simulation {
 public:
  std::string name() const override { return "scaling_sweep"; }

  std::string description() const override {
    return "data/model tandem-scaling grid for recommendation models: "
           "normalized entropy vs training energy, Pareto frontier, and the "
           "paper's tiny frontier power-law exponent (Figure 12, Appendix A)";
  }

  std::vector<ParamDoc> params() const override {
    std::vector<ParamDoc> docs = {
        {"data_factors", "number list", "[1, 2, 4, 8, 16]",
         "data scale multipliers"},
        {"model_factors", "number list", "[1, 2, 4, 8, 16]",
         "model scale multipliers"},
        {"law.ne_floor", "number", "0.75", "NE saturation floor"},
        {"law.data_coeff", "number", "0.04", "data-term coefficient"},
        {"law.data_exp", "number", "0.04", "data-term exponent"},
        {"law.model_coeff", "number", "0.035", "model-term coefficient"},
        {"law.model_exp", "number", "0.04", "model-term exponent"},
        {"law.model_energy_exponent", "number", "0.6667",
         "per-step energy ~ model^e"},
    };
    for (ParamDoc& d : fault_param_docs()) {
      docs.push_back(std::move(d));
    }
    return docs;
  }

  RunResult run(const Spec& params, const RunContext& ctx) const override {
    params.allow_only({"data_factors", "model_factors", "law", "faults"});
    using namespace scaling;

    const Spec law_spec = params.optional_child("law");
    law_spec.allow_only({"ne_floor", "data_coeff", "data_exp", "model_coeff",
                         "model_exp", "model_energy_exponent"});
    RecsysScalingLaw law;
    law.ne_floor = law_spec.optional_double_in("ne_floor", law.ne_floor, 0.0, 10.0);
    law.data_coeff =
        law_spec.optional_double_in("data_coeff", law.data_coeff, 0.0, 10.0);
    law.data_exp =
        law_spec.optional_double_in("data_exp", law.data_exp, 0.0, 10.0);
    law.model_coeff =
        law_spec.optional_double_in("model_coeff", law.model_coeff, 0.0, 10.0);
    law.model_exp =
        law_spec.optional_double_in("model_exp", law.model_exp, 0.0, 10.0);
    law.model_energy_exponent = law_spec.optional_double_in(
        "model_energy_exponent", law.model_energy_exponent, 0.0, 3.0);

    const std::vector<double> data_factors = params.optional_number_list(
        "data_factors", {1.0, 2.0, 4.0, 8.0, 16.0});
    const std::vector<double> model_factors = params.optional_number_list(
        "model_factors", {1.0, 2.0, 4.0, 8.0, 16.0});
    for (double f : data_factors) {
      if (f <= 0.0) {
        throw SpecError(params.path() +
                        ".data_factors: factors must be positive");
      }
    }
    for (double f : model_factors) {
      if (f <= 0.0) {
        throw SpecError(params.path() +
                        ".model_factors: factors must be positive");
      }
    }

    const ScalingGrid grid(law, data_factors, model_factors);

    // Run-level fault gate: one training-day per grid point.
    const ParsedFaults parsed_faults = parse_faults(params, ctx.seed);
    fault::RunGateResult gate;
    if (parsed_faults.present) {
      gate = gate_run(parsed_faults,
                      days(static_cast<double>(grid.points().size())));
    }

    const std::vector<GridPoint> frontier = grid.pareto_frontier();
    const double exponent = grid.frontier_power_exponent();

    RunResult out;
    out.scenario = name();
    out.summary_header = {"data x", "model x", "total energy (rel)",
                          "normalized entropy"};
    JsonValue frontier_json = JsonValue::array();
    for (const GridPoint& p : frontier) {
      out.summary_rows.push_back(
          {report::fmt(p.data_factor), report::fmt(p.model_factor),
           report::fmt(p.total_energy), report::fmt(p.normalized_entropy)});
      JsonValue jp = JsonValue::object();
      jp.set("data_factor", num(p.data_factor));
      jp.set("model_factor", num(p.model_factor));
      jp.set("total_energy", num(p.total_energy));
      jp.set("normalized_entropy", num(p.normalized_entropy));
      frontier_json.append(std::move(jp));
    }
    out.notes = {
        "grid points:             " + std::to_string(grid.points().size()),
        "pareto frontier points:  " + std::to_string(frontier.size()),
        "frontier power exponent: " + report::shortest_double(exponent),
    };

    report::CsvWriter csv({"data_factor", "model_factor", "energy_per_step",
                           "total_energy", "normalized_entropy"});
    JsonValue points = JsonValue::array();
    for (const GridPoint& p : grid.points()) {
      csv.add_row_values({p.data_factor, p.model_factor, p.energy_per_step,
                          p.total_energy, p.normalized_entropy});
      JsonValue jp = JsonValue::object();
      jp.set("data_factor", num(p.data_factor));
      jp.set("model_factor", num(p.model_factor));
      jp.set("energy_per_step", num(p.energy_per_step));
      jp.set("total_energy", num(p.total_energy));
      jp.set("normalized_entropy", num(p.normalized_entropy));
      points.append(std::move(jp));
    }
    out.csv_series.emplace_back("scaling_grid", csv.to_string());

    JsonValue& rep = out.report;
    rep.set("frontier_power_exponent", num(exponent));
    if (parsed_faults.present) {
      double total_energy_rel = 0.0;
      for (const GridPoint& p : grid.points()) {
        total_energy_rel += p.total_energy;
      }
      rep.set("faults",
              gate_report(gate, total_energy_rel, "wasted_energy_rel"));
    }
    rep.set("points", std::move(points));
    rep.set("frontier", std::move(frontier_json));
    return out;
  }
};

}  // namespace

void register_builtin_simulations(Registry& registry) {
  registry.add(std::make_unique<FleetSimulation>());
  registry.add(std::make_unique<PlanetSimulation>());
  registry.add(std::make_unique<QueueScheduleSimulation>());
  registry.add(std::make_unique<CrossRegionScheduleSimulation>());
  registry.add(std::make_unique<FlRoundsSimulation>());
  registry.add(std::make_unique<LifecycleEstimateSimulation>());
  registry.add(std::make_unique<ScalingSweepSimulation>());
}

}  // namespace sustainai::scenario
