// The uniform simulation interface behind the scenario engine.
//
// Every registered simulation adapts one module's Config from a declarative
// scenario::Spec and returns a RunResult: printable summary rows, a
// structured JSON report in *base units* (joules, grams, seconds — so
// downstream consumers can reconstruct exact typed quantities), and
// optional CSV series. Simulations are stateless and deterministic: a fixed
// spec and RunContext produce the same RunResult at any SUSTAINAI_THREADS
// (the sims inherit the exec-layer determinism contract, exec/parallel.h).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "report/json.h"
#include "report/table.h"
#include "scenario/spec.h"

namespace sustainai::scenario {

// Documentation of one accepted parameter, surfaced by `sustainai
// scenarios` and by error paths. `name` is the dotted path inside the
// spec's "params" object ("grid.solar_share"); `default_value` is empty for
// required parameters.
struct ParamDoc {
  std::string name;
  std::string type;  // "number", "int", "string", "bool", "number list", ...
  std::string default_value;
  std::string description;
};

// What one simulation run produced.
struct RunResult {
  std::string scenario;  // registry name of the simulation
  std::vector<std::string> summary_header;
  std::vector<std::vector<std::string>> summary_rows;
  // Machine-readable report; physical quantities in base units with
  // unit-suffixed keys (energy "…_j", carbon "…_g", time "…_s", power "…_w").
  report::JsonValue report = report::JsonValue::object();
  // Optional per-series CSV artifacts: (file stem, csv text). The Runner
  // writes each as "<stem>.csv" in the bundle.
  std::vector<std::pair<std::string, std::string>> csv_series;
  // Headline one-liners printed after the summary table ("IT energy: 1.2 GWh").
  std::vector<std::string> notes;

  // The summary rendered as a fixed-width report::Table.
  [[nodiscard]] report::Table summary_table() const {
    report::Table t(summary_header);
    for (const std::vector<std::string>& row : summary_rows) {
      t.add_row(row);
    }
    return t;
  }
};

struct RunContext {
  // Thread pool for parallel sims; nullptr means exec::ThreadPool::global().
  exec::ThreadPool* pool = nullptr;
  // Base seed, taken from the spec's top-level "seed" (default 42). Sims
  // whose module defaults differ (fl_rounds) document their own seed params.
  std::uint64_t seed = 42;
};

class Simulation {
 public:
  virtual ~Simulation() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;
  [[nodiscard]] virtual std::vector<ParamDoc> params() const = 0;

  // Runs the simulation. `params` is the spec's "params" object; unknown or
  // ill-typed keys throw SpecError with the full JSON path.
  [[nodiscard]] virtual RunResult run(const Spec& params,
                                      const RunContext& ctx) const = 0;
};

}  // namespace sustainai::scenario
