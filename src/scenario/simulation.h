// The uniform simulation interface behind the scenario engine.
//
// Every registered simulation adapts one module's Config from a declarative
// scenario::Spec and returns a RunResult: printable summary rows, a
// structured JSON report in *base units* (joules, grams, seconds — so
// downstream consumers can reconstruct exact typed quantities), and
// optional CSV series. Simulations are stateless and deterministic: a fixed
// spec and RunContext produce the same RunResult at any SUSTAINAI_THREADS
// (the sims inherit the exec-layer determinism contract, exec/parallel.h).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "report/json.h"
#include "report/table.h"
#include "scenario/spec.h"

namespace sustainai::scenario {

// Documentation of one accepted parameter, surfaced by `sustainai
// scenarios` and by error paths. `name` is the dotted path inside the
// spec's "params" object ("grid.solar_share"); `default_value` is empty for
// required parameters.
struct ParamDoc {
  std::string name;
  std::string type;  // "number", "int", "string", "bool", "number list", ...
  std::string default_value;
  std::string description;
};

// Uniform checkpoint/resume request, honored by every simulation that
// advertises supports_checkpoint(). The run is split into segments; at each
// segment boundary the simulator's snapshot round-trips through canonical
// JSON (and is handed to `write_snapshot`, when set), so the path a killed
// and resumed run takes is exercised — byte-identical to an uninterrupted
// run by the engine checkpoint contract (DESIGN.md §11).
struct CheckpointRequest {
  // Split the run into this many equal segments (1 = unsegmented). A
  // sim-level "checkpoint_segments" param may raise this further.
  long segments = 1;
  // Explicit steps per segment; overrides `segments` when > 0. Rounded up
  // to the simulator's chunk granule where one exists.
  long segment_steps = 0;
  // Stop (without finalizing) after this many segments; 0 runs to the end.
  // A stopped run yields a Bundle with `stopped` set and no result.json.
  long stop_after = 0;
  // Snapshot JSON to resume from instead of starting fresh. The embedded
  // config digest must match the spec's simulator configuration.
  std::string resume_text;
  // Called with the canonical snapshot at every segment boundary.
  std::function<void(const std::string&)> write_snapshot;

  [[nodiscard]] bool active() const {
    return segments > 1 || segment_steps > 0 || stop_after > 0 ||
           !resume_text.empty() || static_cast<bool>(write_snapshot);
  }
};

// What one simulation run produced.
struct RunResult {
  std::string scenario;  // registry name of the simulation
  std::vector<std::string> summary_header;
  std::vector<std::vector<std::string>> summary_rows;
  // Machine-readable report; physical quantities in base units with
  // unit-suffixed keys (energy "…_j", carbon "…_g", time "…_s", power "…_w").
  report::JsonValue report = report::JsonValue::object();
  // Optional per-series CSV artifacts: (file stem, csv text). The Runner
  // writes each as "<stem>.csv" in the bundle.
  std::vector<std::pair<std::string, std::string>> csv_series;
  // Headline one-liners printed after the summary table ("IT energy: 1.2 GWh").
  std::vector<std::string> notes;
  // True when a CheckpointRequest's stop_after halted the run mid-flight.
  // Summary/report are incomplete; the snapshot written at the last segment
  // boundary is the resume handle.
  bool stopped = false;

  // The summary rendered as a fixed-width report::Table.
  [[nodiscard]] report::Table summary_table() const {
    report::Table t(summary_header);
    for (const std::vector<std::string>& row : summary_rows) {
      t.add_row(row);
    }
    return t;
  }
};

struct RunContext {
  // Thread pool for parallel sims; nullptr means exec::ThreadPool::global().
  exec::ThreadPool* pool = nullptr;
  // Base seed, taken from the spec's top-level "seed" (default 42). Sims
  // whose module defaults differ (fl_rounds) document their own seed params.
  std::uint64_t seed = 42;
  // Checkpoint/resume request; ignored unless active(). The Runner rejects
  // an active request against a sim without supports_checkpoint().
  CheckpointRequest checkpoint;
};

class Simulation {
 public:
  virtual ~Simulation() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;
  [[nodiscard]] virtual std::vector<ParamDoc> params() const = 0;

  // True when the simulation honors RunContext::checkpoint (segmented
  // advance, canonical-JSON snapshots, resume). Default: no.
  [[nodiscard]] virtual bool supports_checkpoint() const { return false; }

  // Runs the simulation. `params` is the spec's "params" object; unknown or
  // ill-typed keys throw SpecError with the full JSON path.
  [[nodiscard]] virtual RunResult run(const Spec& params,
                                      const RunContext& ctx) const = 0;
};

}  // namespace sustainai::scenario
