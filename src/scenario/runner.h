// The scenario Runner: spec in, self-describing artifact bundle out.
//
// A top-level scenario spec is a JSON object:
//
//   {
//     "scenario": "fleet",            // required; a Registry name
//     "seed": 42,                     // optional base seed
//     "params": { ... },              // simulation parameters (see `params()`)
//     "artifacts": {                  // optional extra artifacts
//       "trace": false,               //   trace.json (sim-time Chrome trace)
//       "metrics": false              //   metrics.prom (Prometheus text)
//     }
//   }
//
// Runner::run executes the named simulation and assembles the bundle
// in-memory: `result.json` (canonical JSON, base-unit report), `spec.json`
// (the spec re-emitted canonically — parsing it back yields an equivalent
// run), any CSV series, and the optional trace/metrics exports. Everything
// in the bundle is a pure function of (spec, seed): for a fixed spec the
// bundle is byte-identical at any SUSTAINAI_THREADS (tests/scenario_test.cc
// asserts this for the fleet preset at 1/2/8 threads).
#pragma once

#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "scenario/registry.h"

namespace sustainai::scenario {

// One bundle file, held in memory so tests can compare bundles without
// touching the filesystem.
struct Artifact {
  std::string filename;
  std::string content;
};

struct Bundle {
  RunResult result;
  std::vector<Artifact> files;

  // True when the run exhausted its fault-injection retry budget. The
  // bundle then carries `error.json` + `spec.json` instead of
  // `result.json`, so a batch of scenarios degrades gracefully: the failed
  // run is recorded on disk and sibling scenarios still execute.
  bool failed = false;

  // True when a CheckpointRequest's stop_after halted the run at a segment
  // boundary. The bundle carries `spec.json` (plus trace/metrics if
  // requested) but no `result.json`; the snapshot handed to
  // `write_snapshot` is the resume handle.
  bool stopped = false;

  // nullptr when the bundle has no file named `filename`.
  [[nodiscard]] const Artifact* find(const std::string& filename) const;
};

class Runner {
 public:
  explicit Runner(const Registry& registry = Registry::global());

  // Validates the top-level spec, runs the named simulation, and returns
  // the full bundle. `pool` overrides the exec pool (nullptr means
  // exec::ThreadPool::global()). Throws SpecError on schema problems and
  // std::invalid_argument on unknown scenario names, or when `checkpoint`
  // is active for a simulation without supports_checkpoint(). The spec's
  // optional top-level "checkpoint_segments" raises checkpoint.segments
  // when the caller didn't set one.
  [[nodiscard]] Bundle run(const Spec& spec, exec::ThreadPool* pool = nullptr,
                           const CheckpointRequest& checkpoint = {}) const;

  // Convenience: parse + run.
  [[nodiscard]] Bundle run_text(std::string_view spec_text,
                                exec::ThreadPool* pool = nullptr,
                                const CheckpointRequest& checkpoint = {}) const;

  // Writes every artifact into `dir` (created if missing). Returns false
  // and sets `*error` on I/O failure.
  static bool write(const Bundle& bundle, const std::string& dir,
                    std::string* error);

 private:
  const Registry* registry_;
};

}  // namespace sustainai::scenario
