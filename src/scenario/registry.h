// Name → Simulation registry: the scenario engine's single front door.
//
// Registry::global() carries the seven built-in simulations (fleet, planet,
// queue_schedule, cross_region_schedule, fl_rounds, lifecycle_estimate,
// scaling_sweep); tests and downstream tools may register more. Lookups
// that miss throw with the full list of registered names, mirroring the
// "unknown grid 'x'; available: …" convention of the library registries.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scenario/simulation.h"

namespace sustainai::scenario {

class Registry {
 public:
  Registry() = default;

  // The process-wide registry, with the built-ins registered on first use.
  [[nodiscard]] static Registry& global();

  // Takes ownership; throws std::invalid_argument on a duplicate name.
  void add(std::unique_ptr<Simulation> simulation);

  // nullptr when `name` is not registered.
  [[nodiscard]] const Simulation* find(const std::string& name) const;

  // Like find, but throws std::invalid_argument listing every registered
  // simulation when `name` is unknown.
  [[nodiscard]] const Simulation& require(const std::string& name) const;

  // All registered simulations, sorted by name.
  [[nodiscard]] std::vector<const Simulation*> simulations() const;

  // Comma-separated sorted names for error messages and listings.
  [[nodiscard]] std::string known_names() const;

 private:
  std::vector<std::unique_ptr<Simulation>> simulations_;
};

// Registers the seven built-in simulations into `registry` (sims.cc).
void register_builtin_simulations(Registry& registry);

}  // namespace sustainai::scenario
