#include "recsys/mlp.h"

#include <cmath>

#include "core/check.h"

namespace sustainai::recsys {

DenseLayer::DenseLayer(int in_features, int out_features, bool relu)
    : in_features_(in_features), out_features_(out_features), relu_(relu) {
  check_arg(in_features >= 1 && out_features >= 1,
            "DenseLayer: features must be >= 1");
  weights_.assign(
      static_cast<std::size_t>(in_features) * static_cast<std::size_t>(out_features),
      0.0f);
  bias_.assign(static_cast<std::size_t>(out_features), 0.0f);
}

DenseLayer DenseLayer::random(int in_features, int out_features, bool relu,
                              datagen::Rng& rng) {
  DenseLayer layer(in_features, out_features, relu);
  const double scale = std::sqrt(2.0 / in_features);  // He init
  for (float& w : layer.weights_) {
    w = static_cast<float>(rng.normal(0.0, scale));
  }
  return layer;
}

void DenseLayer::forward(std::span<const float> in, std::span<float> out) const {
  check_arg(static_cast<int>(in.size()) == in_features_,
            "DenseLayer::forward: input size mismatch");
  check_arg(static_cast<int>(out.size()) == out_features_,
            "DenseLayer::forward: output size mismatch");
  for (int o = 0; o < out_features_; ++o) {
    const float* row =
        weights_.data() + static_cast<std::size_t>(o) * in_features_;
    float acc = bias_[static_cast<std::size_t>(o)];
    for (int i = 0; i < in_features_; ++i) {
      acc += row[i] * in[static_cast<std::size_t>(i)];
    }
    out[static_cast<std::size_t>(o)] = relu_ && acc < 0.0f ? 0.0f : acc;
  }
}

std::size_t DenseLayer::parameter_count() const {
  return weights_.size() + bias_.size();
}

float& DenseLayer::weight(int out, int in) {
  return weights_[static_cast<std::size_t>(out) * in_features_ + in];
}

float DenseLayer::weight(int out, int in) const {
  return weights_[static_cast<std::size_t>(out) * in_features_ + in];
}

Mlp::Mlp(const std::vector<int>& widths, datagen::Rng& rng) {
  check_arg(widths.size() >= 2, "Mlp: need at least input and output widths");
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    const bool relu = i + 2 < widths.size();  // no ReLU on the last layer
    layers_.push_back(
        DenseLayer::random(widths[i], widths[i + 1], relu, rng));
  }
}

std::vector<float> Mlp::forward(std::span<const float> in) const {
  std::vector<float> current(in.begin(), in.end());
  std::vector<float> next;
  for (const DenseLayer& layer : layers_) {
    next.assign(static_cast<std::size_t>(layer.out_features()), 0.0f);
    layer.forward(current, next);
    current.swap(next);
  }
  return current;
}

int Mlp::in_features() const { return layers_.front().in_features(); }
int Mlp::out_features() const { return layers_.back().out_features(); }

std::size_t Mlp::parameter_count() const {
  std::size_t count = 0;
  for (const DenseLayer& layer : layers_) {
    count += layer.parameter_count();
  }
  return count;
}

float sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace sustainai::recsys
