#include "recsys/mlp.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sustainai::recsys {

DenseLayer::DenseLayer(int in_features, int out_features, bool relu)
    : in_features_(in_features), out_features_(out_features), relu_(relu) {
  check_arg(in_features >= 1 && out_features >= 1,
            "DenseLayer: features must be >= 1");
  weights_.assign(
      static_cast<std::size_t>(in_features) * static_cast<std::size_t>(out_features),
      0.0f);
  bias_.assign(static_cast<std::size_t>(out_features), 0.0f);
}

DenseLayer DenseLayer::random(int in_features, int out_features, bool relu,
                              datagen::Rng& rng) {
  DenseLayer layer(in_features, out_features, relu);
  const double scale = std::sqrt(2.0 / in_features);  // He init
  for (float& w : layer.weights_) {
    w = static_cast<float>(rng.normal(0.0, scale));
  }
  return layer;
}

void DenseLayer::forward(std::span<const float> in, std::span<float> out) const {
  check_arg(static_cast<int>(in.size()) == in_features_,
            "DenseLayer::forward: input size mismatch");
  check_arg(static_cast<int>(out.size()) == out_features_,
            "DenseLayer::forward: output size mismatch");
  forward_one(in.data(), out.data());
}

void DenseLayer::forward_one(const float* in, float* out) const {
  for (int o = 0; o < out_features_; ++o) {
    const float* row =
        weights_.data() + static_cast<std::size_t>(o) * in_features_;
    float acc = bias_[static_cast<std::size_t>(o)];
    for (int i = 0; i < in_features_; ++i) {
      acc += row[i] * in[i];
    }
    out[o] = relu_ && acc < 0.0f ? 0.0f : acc;
  }
}

void DenseLayer::forward_batch(std::span<const float> in, std::span<float> out,
                               int batch) const {
  check_arg(batch >= 0, "DenseLayer::forward_batch: batch must be >= 0");
  check_arg(in.size() == static_cast<std::size_t>(batch) *
                             static_cast<std::size_t>(in_features_),
            "DenseLayer::forward_batch: input size mismatch");
  check_arg(out.size() == static_cast<std::size_t>(batch) *
                              static_cast<std::size_t>(out_features_),
            "DenseLayer::forward_batch: output size mismatch");
  // Register tile: kRows batch rows x kCols outputs per block, the shared
  // reduction dimension walked innermost in ascending order. Every (row,
  // output) pair owns one scalar accumulator seeded with the bias, so the
  // accumulation order — and therefore every output bit — matches the
  // per-sample GEMV regardless of how the tile edges fall.
  constexpr int kRows = 4;
  constexpr int kCols = 4;
  const float* w = weights_.data();
  for (int b0 = 0; b0 < batch; b0 += kRows) {
    const int bn = std::min(kRows, batch - b0);
    for (int o0 = 0; o0 < out_features_; o0 += kCols) {
      const int on = std::min(kCols, out_features_ - o0);
      if (bn == kRows && on == kCols) {
        float acc[kRows][kCols];
        for (int r = 0; r < kRows; ++r) {
          for (int c = 0; c < kCols; ++c) {
            acc[r][c] = bias_[static_cast<std::size_t>(o0 + c)];
          }
        }
        for (int i = 0; i < in_features_; ++i) {
          float wk[kCols];
          for (int c = 0; c < kCols; ++c) {
            wk[c] = w[static_cast<std::size_t>(o0 + c) * in_features_ + i];
          }
          for (int r = 0; r < kRows; ++r) {
            const float x =
                in[static_cast<std::size_t>(b0 + r) * in_features_ + i];
            for (int c = 0; c < kCols; ++c) {
              acc[r][c] += wk[c] * x;
            }
          }
        }
        for (int r = 0; r < kRows; ++r) {
          float* dst = out.data() +
                       static_cast<std::size_t>(b0 + r) * out_features_ + o0;
          for (int c = 0; c < kCols; ++c) {
            dst[c] = relu_ && acc[r][c] < 0.0f ? 0.0f : acc[r][c];
          }
        }
      } else {
        // Edge tile: same accumulator-per-pair scheme at scalar pace.
        for (int r = 0; r < bn; ++r) {
          const float* x =
              in.data() + static_cast<std::size_t>(b0 + r) * in_features_;
          float* dst = out.data() +
                       static_cast<std::size_t>(b0 + r) * out_features_;
          for (int c = 0; c < on; ++c) {
            const float* row =
                w + static_cast<std::size_t>(o0 + c) * in_features_;
            float acc = bias_[static_cast<std::size_t>(o0 + c)];
            for (int i = 0; i < in_features_; ++i) {
              acc += row[i] * x[i];
            }
            dst[o0 + c] = relu_ && acc < 0.0f ? 0.0f : acc;
          }
        }
      }
    }
  }
}

std::size_t DenseLayer::parameter_count() const {
  return weights_.size() + bias_.size();
}

float& DenseLayer::weight(int out, int in) {
  return weights_[static_cast<std::size_t>(out) * in_features_ + in];
}

float DenseLayer::weight(int out, int in) const {
  return weights_[static_cast<std::size_t>(out) * in_features_ + in];
}

Mlp::Mlp(const std::vector<int>& widths, datagen::Rng& rng) {
  check_arg(widths.size() >= 2, "Mlp: need at least input and output widths");
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    const bool relu = i + 2 < widths.size();  // no ReLU on the last layer
    layers_.push_back(
        DenseLayer::random(widths[i], widths[i + 1], relu, rng));
  }
}

std::vector<float> Mlp::forward(std::span<const float> in) const {
  std::vector<float> current(in.begin(), in.end());
  std::vector<float> next;
  for (const DenseLayer& layer : layers_) {
    next.assign(static_cast<std::size_t>(layer.out_features()), 0.0f);
    layer.forward(current, next);
    current.swap(next);
  }
  return current;
}

std::vector<float> Mlp::forward_batch(std::span<const float> in,
                                      int batch) const {
  check_arg(batch >= 0, "Mlp::forward_batch: batch must be >= 0");
  check_arg(in.size() == static_cast<std::size_t>(batch) *
                             static_cast<std::size_t>(in_features()),
            "Mlp::forward_batch: input size mismatch");
  std::vector<float> current(in.begin(), in.end());
  std::vector<float> next;
  for (const DenseLayer& layer : layers_) {
    next.assign(static_cast<std::size_t>(batch) *
                    static_cast<std::size_t>(layer.out_features()),
                0.0f);
    layer.forward_batch(current, next, batch);
    current.swap(next);
  }
  return current;
}

int Mlp::in_features() const { return layers_.front().in_features(); }
int Mlp::out_features() const { return layers_.back().out_features(); }

std::size_t Mlp::parameter_count() const {
  std::size_t count = 0;
  for (const DenseLayer& layer : layers_) {
    count += layer.parameter_count();
  }
  return count;
}

float sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace sustainai::recsys
