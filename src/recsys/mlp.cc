#include "recsys/mlp.h"

#include <algorithm>
#include <cmath>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "core/check.h"

namespace sustainai::recsys {

namespace {

// True when `size` == batch * features without the product ever being
// formed: a negative batch or a wrapped multiplication can therefore never
// sneak past the guard (size_t(batch) * size_t(features) wraps for
// batch < 0 and can collide with a small size()).
bool batch_size_matches(std::size_t size, int batch, int features) {
  if (batch < 0 || features <= 0) {
    return false;
  }
  if (batch == 0) {
    return size == 0;
  }
  const auto f = static_cast<std::size_t>(features);
  return size % f == 0 && size / f == static_cast<std::size_t>(batch);
}

}  // namespace

DenseLayer::DenseLayer(int in_features, int out_features, bool relu)
    : in_features_(in_features), out_features_(out_features), relu_(relu) {
  check_arg(in_features >= 1 && out_features >= 1,
            "DenseLayer: features must be >= 1");
  weights_.assign(
      static_cast<std::size_t>(in_features) * static_cast<std::size_t>(out_features),
      0.0f);
  bias_.assign(static_cast<std::size_t>(out_features), 0.0f);
}

DenseLayer DenseLayer::random(int in_features, int out_features, bool relu,
                              datagen::Rng& rng) {
  DenseLayer layer(in_features, out_features, relu);
  const double scale = std::sqrt(2.0 / in_features);  // He init
  for (float& w : layer.weights_) {
    w = static_cast<float>(rng.normal(0.0, scale));
  }
  return layer;
}

void DenseLayer::forward(std::span<const float> in, std::span<float> out) const {
  check_arg(static_cast<int>(in.size()) == in_features_,
            "DenseLayer::forward: input size mismatch");
  check_arg(static_cast<int>(out.size()) == out_features_,
            "DenseLayer::forward: output size mismatch");
  forward_one(in.data(), out.data());
}

void DenseLayer::forward_one(const float* in, float* out) const {
  for (int o = 0; o < out_features_; ++o) {
    const float* row =
        weights_.data() + static_cast<std::size_t>(o) * in_features_;
    float acc = bias_[static_cast<std::size_t>(o)];
    for (int i = 0; i < in_features_; ++i) {
      acc += row[i] * in[i];
    }
    out[o] = relu_ && acc < 0.0f ? 0.0f : acc;
  }
}

void DenseLayer::forward_batch(std::span<const float> in, std::span<float> out,
                               int batch) const {
  check_arg(batch_size_matches(in.size(), batch, in_features_),
            "DenseLayer::forward_batch: input size mismatch");
  check_arg(batch_size_matches(out.size(), batch, out_features_),
            "DenseLayer::forward_batch: output size mismatch");
  // Fixed-width tile: kRows batch rows x kCols outputs per block, the shared
  // reduction dimension walked innermost in ascending order. Every (row,
  // output) pair owns one scalar accumulator seeded with the bias, so the
  // accumulation order — and therefore every output bit — matches the
  // per-sample GEMV regardless of how the tile edges fall. The weights are
  // packed transposed once per call (wt[i * O + o]) so the kCols lane loads
  // in the hot loop are contiguous and the c-loop vectorizes; packing only
  // reorders reads, never the per-accumulator reduction, so the bits are
  // unchanged.
  constexpr int kRows = 4;
  constexpr int kCols = 8;
  const int in_dim = in_features_;
  const int out_dim = out_features_;
  if (batch < kRows) {
    // Too few rows to amortize the transpose; per-row GEMV is bit-identical.
    for (int r = 0; r < batch; ++r) {
      forward_one(in.data() + static_cast<std::size_t>(r) * in_dim,
                  out.data() + static_cast<std::size_t>(r) * out_dim);
    }
    return;
  }
  std::vector<float> wt(weights_.size());
  for (int o = 0; o < out_dim; ++o) {
    const float* row = weights_.data() + static_cast<std::size_t>(o) * in_dim;
    for (int i = 0; i < in_dim; ++i) {
      wt[static_cast<std::size_t>(i) * out_dim + o] = row[i];
    }
  }
  int b0 = 0;
  for (; b0 + kRows <= batch; b0 += kRows) {
    const float* x0 = in.data() + static_cast<std::size_t>(b0) * in_dim;
    for (int o0 = 0; o0 < out_dim; o0 += kCols) {
      const int on = std::min(kCols, out_dim - o0);
      if (on == kCols) {
#if defined(__SSE2__)
        // Explicit 4x8 register tile: two 4-lane vectors per row, all eight
        // accumulators live in registers for the whole i-loop. Each vector
        // lane is still one (row, output) scalar chain — _mm_add_ps /
        // _mm_mul_ps apply the identical operation per lane, so the bits
        // match the scalar tile below exactly. _mm_max_ps(0, x) reproduces
        // the scalar ReLU bit for bit: it returns the second operand when
        // the lanes compare equal (so -0.0f survives) or unordered (so NaN
        // survives), exactly like `x < 0 ? 0 : x`.
        const float* bz = bias_.data() + o0;
        __m128 a0l = _mm_loadu_ps(bz), a0h = _mm_loadu_ps(bz + 4);
        __m128 a1l = a0l, a1h = a0h;
        __m128 a2l = a0l, a2h = a0h;
        __m128 a3l = a0l, a3h = a0h;
        const float* x1 = x0 + in_dim;
        const float* x2 = x1 + in_dim;
        const float* x3 = x2 + in_dim;
        for (int i = 0; i < in_dim; ++i) {
          const float* wk =
              wt.data() + static_cast<std::size_t>(i) * out_dim + o0;
          const __m128 wl = _mm_loadu_ps(wk);
          const __m128 wh = _mm_loadu_ps(wk + 4);
          __m128 x = _mm_set1_ps(x0[i]);
          a0l = _mm_add_ps(a0l, _mm_mul_ps(wl, x));
          a0h = _mm_add_ps(a0h, _mm_mul_ps(wh, x));
          x = _mm_set1_ps(x1[i]);
          a1l = _mm_add_ps(a1l, _mm_mul_ps(wl, x));
          a1h = _mm_add_ps(a1h, _mm_mul_ps(wh, x));
          x = _mm_set1_ps(x2[i]);
          a2l = _mm_add_ps(a2l, _mm_mul_ps(wl, x));
          a2h = _mm_add_ps(a2h, _mm_mul_ps(wh, x));
          x = _mm_set1_ps(x3[i]);
          a3l = _mm_add_ps(a3l, _mm_mul_ps(wl, x));
          a3h = _mm_add_ps(a3h, _mm_mul_ps(wh, x));
        }
        if (relu_) {
          const __m128 zero = _mm_setzero_ps();
          a0l = _mm_max_ps(zero, a0l);
          a0h = _mm_max_ps(zero, a0h);
          a1l = _mm_max_ps(zero, a1l);
          a1h = _mm_max_ps(zero, a1h);
          a2l = _mm_max_ps(zero, a2l);
          a2h = _mm_max_ps(zero, a2h);
          a3l = _mm_max_ps(zero, a3l);
          a3h = _mm_max_ps(zero, a3h);
        }
        float* dst = out.data() + static_cast<std::size_t>(b0) * out_dim + o0;
        _mm_storeu_ps(dst, a0l);
        _mm_storeu_ps(dst + 4, a0h);
        dst += out_dim;
        _mm_storeu_ps(dst, a1l);
        _mm_storeu_ps(dst + 4, a1h);
        dst += out_dim;
        _mm_storeu_ps(dst, a2l);
        _mm_storeu_ps(dst + 4, a2h);
        dst += out_dim;
        _mm_storeu_ps(dst, a3l);
        _mm_storeu_ps(dst + 4, a3h);
#else
        float acc[kRows][kCols];
        for (int r = 0; r < kRows; ++r) {
          for (int c = 0; c < kCols; ++c) {
            acc[r][c] = bias_[static_cast<std::size_t>(o0 + c)];
          }
        }
        for (int i = 0; i < in_dim; ++i) {
          const float* wk = wt.data() + static_cast<std::size_t>(i) * out_dim + o0;
          for (int r = 0; r < kRows; ++r) {
            const float x = x0[static_cast<std::size_t>(r) * in_dim + i];
            for (int c = 0; c < kCols; ++c) {
              acc[r][c] += wk[c] * x;
            }
          }
        }
        for (int r = 0; r < kRows; ++r) {
          float* dst = out.data() +
                       static_cast<std::size_t>(b0 + r) * out_dim + o0;
          for (int c = 0; c < kCols; ++c) {
            dst[c] = relu_ && acc[r][c] < 0.0f ? 0.0f : acc[r][c];
          }
        }
#endif
      } else {
        // Column edge tile: same accumulator-per-pair scheme at scalar pace.
        for (int r = 0; r < kRows; ++r) {
          const float* x = x0 + static_cast<std::size_t>(r) * in_dim;
          float* dst = out.data() +
                       static_cast<std::size_t>(b0 + r) * out_dim;
          for (int c = 0; c < on; ++c) {
            float acc = bias_[static_cast<std::size_t>(o0 + c)];
            for (int i = 0; i < in_dim; ++i) {
              acc += wt[static_cast<std::size_t>(i) * out_dim + o0 + c] * x[i];
            }
            dst[o0 + c] = relu_ && acc < 0.0f ? 0.0f : acc;
          }
        }
      }
    }
  }
  // Row tail: fewer than kRows rows left.
  for (; b0 < batch; ++b0) {
    forward_one(in.data() + static_cast<std::size_t>(b0) * in_dim,
                out.data() + static_cast<std::size_t>(b0) * out_dim);
  }
}

std::size_t DenseLayer::parameter_count() const {
  return weights_.size() + bias_.size();
}

float& DenseLayer::weight(int out, int in) {
  return weights_[static_cast<std::size_t>(out) * in_features_ + in];
}

float DenseLayer::weight(int out, int in) const {
  return weights_[static_cast<std::size_t>(out) * in_features_ + in];
}

Mlp::Mlp(const std::vector<int>& widths, datagen::Rng& rng) {
  check_arg(widths.size() >= 2, "Mlp: need at least input and output widths");
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    const bool relu = i + 2 < widths.size();  // no ReLU on the last layer
    layers_.push_back(
        DenseLayer::random(widths[i], widths[i + 1], relu, rng));
  }
}

std::vector<float> Mlp::forward(std::span<const float> in) const {
  std::vector<float> current(in.begin(), in.end());
  std::vector<float> next;
  for (const DenseLayer& layer : layers_) {
    next.assign(static_cast<std::size_t>(layer.out_features()), 0.0f);
    layer.forward(current, next);
    current.swap(next);
  }
  return current;
}

std::vector<float> Mlp::forward_batch(std::span<const float> in,
                                      int batch) const {
  check_arg(batch_size_matches(in.size(), batch, in_features()),
            "Mlp::forward_batch: input size mismatch");
  std::vector<float> current(in.begin(), in.end());
  std::vector<float> next;
  for (const DenseLayer& layer : layers_) {
    next.assign(static_cast<std::size_t>(batch) *
                    static_cast<std::size_t>(layer.out_features()),
                0.0f);
    layer.forward_batch(current, next, batch);
    current.swap(next);
  }
  return current;
}

int Mlp::in_features() const { return layers_.front().in_features(); }
int Mlp::out_features() const { return layers_.back().out_features(); }

std::size_t Mlp::parameter_count() const {
  std::size_t count = 0;
  for (const DenseLayer& layer : layers_) {
    count += layer.parameter_count();
  }
  return count;
}

float sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace sustainai::recsys
