#include "recsys/tt_embedding.h"

#include <cmath>

#include "core/check.h"

namespace sustainai::recsys {

long TtShape::rows() const {
  return static_cast<long>(row_factors[0]) * row_factors[1] * row_factors[2];
}

int TtShape::dim() const {
  return dim_factors[0] * dim_factors[1] * dim_factors[2];
}

TtEmbeddingTable::TtEmbeddingTable(TtShape shape, datagen::Rng& rng)
    : shape_(shape) {
  for (int f : shape_.row_factors) {
    check_arg(f >= 1, "TtEmbeddingTable: row factors must be >= 1");
  }
  for (int f : shape_.dim_factors) {
    check_arg(f >= 1, "TtEmbeddingTable: dim factors must be >= 1");
  }
  for (int r : shape_.ranks) {
    check_arg(r >= 1, "TtEmbeddingTable: ranks must be >= 1");
  }
  const auto [n1, n2, n3] = shape_.row_factors;
  const auto [d1, d2, d3] = shape_.dim_factors;
  const auto [r1, r2] = shape_.ranks;
  core1_.assign(static_cast<std::size_t>(n1) * d1 * r1, 0.0f);
  core2_.assign(static_cast<std::size_t>(r1) * n2 * d2 * r2, 0.0f);
  core3_.assign(static_cast<std::size_t>(r2) * n3 * d3, 0.0f);
  // Row values are sums of r1*r2 triple products; scale per-core sigma so
  // the reconstructed row variance is ~1/D (dense-table initialization).
  const double target_var = 1.0 / shape_.dim();
  const double sigma =
      std::pow(target_var / (static_cast<double>(r1) * r2), 1.0 / 6.0);
  for (float& v : core1_) {
    v = static_cast<float>(rng.normal(0.0, sigma));
  }
  for (float& v : core2_) {
    v = static_cast<float>(rng.normal(0.0, sigma));
  }
  for (float& v : core3_) {
    v = static_cast<float>(rng.normal(0.0, sigma));
  }
}

std::array<int, 3> TtEmbeddingTable::decode_index(long row) const {
  check_arg(row >= 0 && row < rows(), "TtEmbeddingTable: row out of range");
  const auto [n1, n2, n3] = shape_.row_factors;
  (void)n1;
  std::array<int, 3> idx{};
  idx[2] = static_cast<int>(row % n3);
  row /= n3;
  idx[1] = static_cast<int>(row % n2);
  idx[0] = static_cast<int>(row / n2);
  return idx;
}

float& TtEmbeddingTable::g1(int i1, int j1, int r) {
  const auto [d1, r1] = std::pair{shape_.dim_factors[0], shape_.ranks[0]};
  return core1_[(static_cast<std::size_t>(i1) * d1 + j1) * r1 + r];
}

float& TtEmbeddingTable::g2(int r_in, int i2, int j2, int r_out) {
  const int n2 = shape_.row_factors[1];
  const int d2 = shape_.dim_factors[1];
  const int r2 = shape_.ranks[1];
  return core2_[((static_cast<std::size_t>(r_in) * n2 + i2) * d2 + j2) * r2 +
                r_out];
}

float& TtEmbeddingTable::g3(int r_in, int i3, int j3) {
  const int n3 = shape_.row_factors[2];
  const int d3 = shape_.dim_factors[2];
  return core3_[(static_cast<std::size_t>(r_in) * n3 + i3) * d3 + j3];
}

std::vector<float> TtEmbeddingTable::lookup(long row) const {
  const auto [i1, i2, i3] = decode_index(row);
  const auto [d1, d2, d3] = shape_.dim_factors;
  const auto [r1, r2] = shape_.ranks;
  const int n2 = shape_.row_factors[1];
  const int n3 = shape_.row_factors[2];

  // Slices: A[d1][r1], B[r1][d2][r2], C[r2][d3].
  const float* a = core1_.data() +
                   static_cast<std::size_t>(i1) * d1 * r1;
  auto b_at = [&](int ra, int j2, int rb) {
    return core2_[((static_cast<std::size_t>(ra) * n2 + i2) * d2 + j2) * r2 +
                  rb];
  };
  auto c_at = [&](int rb, int j3) {
    return core3_[(static_cast<std::size_t>(rb) * n3 + i3) * d3 + j3];
  };

  // M[j1][j2][rb] = sum_ra A[j1][ra] * B[ra][j2][rb].
  std::vector<float> m(static_cast<std::size_t>(d1) * d2 * r2, 0.0f);
  for (int j1 = 0; j1 < d1; ++j1) {
    for (int ra = 0; ra < r1; ++ra) {
      const float av = a[static_cast<std::size_t>(j1) * r1 + ra];
      if (av == 0.0f) {
        continue;
      }
      for (int j2 = 0; j2 < d2; ++j2) {
        for (int rb = 0; rb < r2; ++rb) {
          m[(static_cast<std::size_t>(j1) * d2 + j2) * r2 + rb] +=
              av * b_at(ra, j2, rb);
        }
      }
    }
  }
  // row[j1][j2][j3] = sum_rb M[j1][j2][rb] * C[rb][j3].
  std::vector<float> out(static_cast<std::size_t>(dim()), 0.0f);
  for (int j1 = 0; j1 < d1; ++j1) {
    for (int j2 = 0; j2 < d2; ++j2) {
      for (int rb = 0; rb < r2; ++rb) {
        const float mv = m[(static_cast<std::size_t>(j1) * d2 + j2) * r2 + rb];
        if (mv == 0.0f) {
          continue;
        }
        for (int j3 = 0; j3 < d3; ++j3) {
          out[(static_cast<std::size_t>(j1) * d2 + j2) * d3 + j3] +=
              mv * c_at(rb, j3);
        }
      }
    }
  }
  return out;
}

std::size_t TtEmbeddingTable::parameter_count() const {
  return core1_.size() + core2_.size() + core3_.size();
}

DataSize TtEmbeddingTable::size_bytes() const {
  return bytes(static_cast<double>(parameter_count()) * sizeof(float));
}

DataSize TtEmbeddingTable::dense_equivalent_bytes() const {
  return bytes(static_cast<double>(rows()) * dim() * sizeof(float));
}

double TtEmbeddingTable::compression_ratio() const {
  return to_bytes(dense_equivalent_bytes()) / to_bytes(size_bytes());
}

std::size_t TtEmbeddingTable::flops_per_lookup() const {
  const auto [d1, d2, d3] = shape_.dim_factors;
  const auto [r1, r2] = shape_.ranks;
  return static_cast<std::size_t>(d1) * d2 * r1 * r2 +
         static_cast<std::size_t>(d1) * d2 * d3 * r2;
}

}  // namespace sustainai::recsys
