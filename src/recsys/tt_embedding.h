// Tensor-train compressed embedding tables (Section IV-B: "the Tensor-
// Train compression technique (TT-Rec) achieves more than 100x memory
// capacity reduction with negligible training time and accuracy
// trade-off").
//
// The N x D embedding matrix is factorized as a 3-core TT-matrix:
// N = n1*n2*n3 rows, D = d1*d2*d3 columns, cores
//   G1[n1][d1][r1],  G2[r1][n2][d2][r2],  G3[r2][n3][d3].
// A row lookup decodes the index into (i1, i2, i3) and contracts the three
// index slices — trading >100x less memory for a few hundred extra FLOPs
// per lookup (less embodied DRAM, slightly more compute: exactly the
// trade-off the paper discusses).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/units.h"
#include "datagen/rng.h"

namespace sustainai::recsys {

struct TtShape {
  std::array<int, 3> row_factors = {100, 100, 100};  // N = product
  std::array<int, 3> dim_factors = {4, 4, 4};        // D = product
  std::array<int, 2> ranks = {16, 16};

  [[nodiscard]] long rows() const;
  [[nodiscard]] int dim() const;
};

class TtEmbeddingTable {
 public:
  // Gaussian-initialized cores, scaled so reconstructed rows have variance
  // comparable to a 1/sqrt(D)-initialized dense table.
  TtEmbeddingTable(TtShape shape, datagen::Rng& rng);

  [[nodiscard]] long rows() const { return shape_.rows(); }
  [[nodiscard]] int dim() const { return shape_.dim(); }

  // Materializes one embedding row (the inference-path contraction).
  [[nodiscard]] std::vector<float> lookup(long row) const;

  // Decodes a flat row index into per-core indices (mixed radix, the last
  // factor fastest).
  [[nodiscard]] std::array<int, 3> decode_index(long row) const;

  [[nodiscard]] std::size_t parameter_count() const;
  [[nodiscard]] DataSize size_bytes() const;
  // Bytes of the equivalent dense fp32 table.
  [[nodiscard]] DataSize dense_equivalent_bytes() const;
  [[nodiscard]] double compression_ratio() const;
  // Multiply-accumulate operations per lookup (the compute cost of the
  // memory saving).
  [[nodiscard]] std::size_t flops_per_lookup() const;

  // Direct core access for testing (g1[i1][j1][r], ...).
  float& g1(int i1, int j1, int r);
  float& g2(int r_in, int i2, int j2, int r_out);
  float& g3(int r_in, int i3, int j3);

 private:
  TtShape shape_;
  std::vector<float> core1_;  // [n1][d1][r1]
  std::vector<float> core2_;  // [r1][n2][d2][r2]
  std::vector<float> core3_;  // [r2][n3][d3]
};

}  // namespace sustainai::recsys
