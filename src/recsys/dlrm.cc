#include "recsys/dlrm.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sustainai::recsys {
namespace {

std::vector<int> bottom_widths(const DlrmConfig& config) {
  std::vector<int> widths{config.dense_features};
  widths.insert(widths.end(), config.bottom_hidden.begin(),
                config.bottom_hidden.end());
  widths.push_back(config.embedding_dim);
  return widths;
}

int interaction_features(const DlrmConfig& config) {
  // Pairwise dot products among bottom output + T pooled embeddings,
  // concatenated with the bottom output itself.
  const int vectors = static_cast<int>(config.table_rows.size()) + 1;
  return vectors * (vectors - 1) / 2 + config.embedding_dim;
}

std::vector<int> top_widths(const DlrmConfig& config) {
  std::vector<int> widths{interaction_features(config)};
  widths.insert(widths.end(), config.top_hidden.begin(),
                config.top_hidden.end());
  widths.push_back(1);
  return widths;
}

Mlp make_mlp(const std::vector<int>& widths, std::uint64_t seed) {
  datagen::Rng rng(seed);
  return Mlp(widths, rng);
}

}  // namespace

DlrmModel::DlrmModel(DlrmConfig config)
    : config_(std::move(config)),
      bottom_(make_mlp(bottom_widths(config_), config_.seed ^ 0xb0770bULL)),
      top_(make_mlp(top_widths(config_), config_.seed ^ 0x70f0f0ULL)) {
  check_arg(!config_.table_rows.empty(), "DlrmModel: need at least one table");
  check_arg(config_.embedding_dim >= 1, "DlrmModel: embedding_dim must be >= 1");
  check_arg(config_.indices_per_table >= 1,
            "DlrmModel: indices_per_table must be >= 1");
  datagen::Rng rng(config_.seed);
  tables_.reserve(config_.table_rows.size());
  for (int rows : config_.table_rows) {
    check_arg(rows >= 1, "DlrmModel: table rows must be >= 1");
    tables_.push_back(
        optim::EmbeddingTable::random(rows, config_.embedding_dim, rng));
  }
  fp16_tables_.reserve(tables_.size());
  bf16_tables_.reserve(tables_.size());
  int8_tables_.reserve(tables_.size());
  for (const optim::EmbeddingTable& t : tables_) {
    fp16_tables_.push_back(optim::quantize(t, optim::NumericFormat::kFp16));
    bf16_tables_.push_back(optim::quantize(t, optim::NumericFormat::kBf16));
    int8_tables_.push_back(
        optim::quantize(t, optim::NumericFormat::kInt8RowWise));
  }
}

template <typename Getter>
void DlrmModel::pool_table(std::size_t table, std::span<const int> indices,
                           Getter&& getter, std::span<float> out) const {
  for (float& v : out) {
    v = 0.0f;
  }
  for (int row : indices) {
    check_arg(row >= 0 && row < config_.table_rows[table],
              "DlrmModel: sparse index out of range");
    for (int d = 0; d < config_.embedding_dim; ++d) {
      out[static_cast<std::size_t>(d)] += getter(table, row, d);
    }
  }
}

float DlrmModel::interact_and_score(
    std::span<const float> bottom_out,
    const std::vector<std::vector<float>>& pooled) const {
  // Collect the interaction operands: bottom output first, then tables.
  std::vector<std::span<const float>> vectors;
  vectors.reserve(pooled.size() + 1);
  vectors.push_back(bottom_out);
  for (const auto& p : pooled) {
    vectors.emplace_back(p.data(), p.size());
  }
  std::vector<float> features;
  features.reserve(static_cast<std::size_t>(interaction_features(config_)));
  for (std::size_t a = 0; a < vectors.size(); ++a) {
    for (std::size_t b = a + 1; b < vectors.size(); ++b) {
      float dot = 0.0f;
      for (int d = 0; d < config_.embedding_dim; ++d) {
        dot += vectors[a][static_cast<std::size_t>(d)] *
               vectors[b][static_cast<std::size_t>(d)];
      }
      features.push_back(dot);
    }
  }
  features.insert(features.end(), bottom_out.begin(), bottom_out.end());
  const std::vector<float> logit = top_.forward(features);
  return sigmoid(logit[0]);
}

float DlrmModel::forward(const DlrmSample& sample) const {
  check_arg(sample.sparse.size() == tables_.size(),
            "DlrmModel::forward: wrong number of sparse feature lists");
  const std::vector<float> bottom_out = bottom_.forward(sample.dense);
  std::vector<std::vector<float>> pooled(tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    pooled[t].assign(static_cast<std::size_t>(config_.embedding_dim), 0.0f);
    pool_table(
        t, sample.sparse[t],
        [&](std::size_t table, int row, int d) {
          return tables_[table].at(row, d);
        },
        pooled[t]);
  }
  return interact_and_score(bottom_out, pooled);
}

std::vector<float> DlrmModel::forward_batch(
    std::span<const DlrmSample> samples) const {
  const auto n = static_cast<int>(samples.size());
  const int d = config_.embedding_dim;

  std::vector<float> dense(static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(config_.dense_features));
  for (int s = 0; s < n; ++s) {
    const DlrmSample& sample = samples[static_cast<std::size_t>(s)];
    check_arg(sample.sparse.size() == tables_.size(),
              "DlrmModel::forward_batch: wrong number of sparse feature lists");
    check_arg(static_cast<int>(sample.dense.size()) == config_.dense_features,
              "DlrmModel::forward_batch: wrong dense feature count");
    std::copy(sample.dense.begin(), sample.dense.end(),
              dense.begin() + static_cast<std::size_t>(s) *
                                  static_cast<std::size_t>(
                                      config_.dense_features));
  }
  const std::vector<float> bottom_out = bottom_.forward_batch(dense, n);

  const std::size_t num_vectors = tables_.size() + 1;
  const std::size_t num_interactions = num_vectors * (num_vectors - 1) / 2;
  const std::size_t top_width = num_interactions + static_cast<std::size_t>(d);
  std::vector<float> top_input(static_cast<std::size_t>(n) * top_width);
  std::vector<std::vector<float>> pooled(
      tables_.size(), std::vector<float>(static_cast<std::size_t>(d)));
  std::vector<const float*> vecs(num_vectors);
  for (int s = 0; s < n; ++s) {
    const DlrmSample& sample = samples[static_cast<std::size_t>(s)];
    const float* b = bottom_out.data() +
                     static_cast<std::size_t>(s) * static_cast<std::size_t>(d);
    vecs[0] = b;
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      pool_table(
          t, sample.sparse[t],
          [&](std::size_t table, int row, int dim) {
            return tables_[table].at(row, dim);
          },
          pooled[t]);
      vecs[t + 1] = pooled[t].data();
    }
    float* dst = top_input.data() + static_cast<std::size_t>(s) * top_width;
    std::size_t k = 0;
    for (std::size_t a = 0; a < num_vectors; ++a) {
      for (std::size_t c = a + 1; c < num_vectors; ++c, ++k) {
        float dot = 0.0f;
        for (int dim = 0; dim < d; ++dim) {
          dot += vecs[a][dim] * vecs[c][dim];
        }
        dst[k] = dot;
      }
    }
    for (int dim = 0; dim < d; ++dim) {
      dst[num_interactions + static_cast<std::size_t>(dim)] = b[dim];
    }
  }

  const std::vector<float> logits = top_.forward_batch(top_input, n);
  std::vector<float> probabilities(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    probabilities[static_cast<std::size_t>(s)] =
        sigmoid(logits[static_cast<std::size_t>(s)]);
  }
  return probabilities;
}

float DlrmModel::forward_quantized(const DlrmSample& sample,
                                   optim::NumericFormat format) const {
  check_arg(sample.sparse.size() == tables_.size(),
            "DlrmModel::forward_quantized: wrong number of sparse lists");
  const std::vector<optim::QuantizedTable>* quantized = nullptr;
  switch (format) {
    case optim::NumericFormat::kFp32:
      return forward(sample);
    case optim::NumericFormat::kFp16:
      quantized = &fp16_tables_;
      break;
    case optim::NumericFormat::kBf16:
      quantized = &bf16_tables_;
      break;
    case optim::NumericFormat::kInt8RowWise:
      quantized = &int8_tables_;
      break;
  }
  const std::vector<float> bottom_out = bottom_.forward(sample.dense);
  std::vector<std::vector<float>> pooled(tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    pooled[t].assign(static_cast<std::size_t>(config_.embedding_dim), 0.0f);
    pool_table(
        t, sample.sparse[t],
        [&](std::size_t table, int row, int d) {
          return (*quantized)[table].dequantize(row, d);
        },
        pooled[t]);
  }
  return interact_and_score(bottom_out, pooled);
}

DlrmSample DlrmModel::random_sample(datagen::Rng& rng) const {
  DlrmSample sample;
  sample.dense.reserve(static_cast<std::size_t>(config_.dense_features));
  for (int i = 0; i < config_.dense_features; ++i) {
    sample.dense.push_back(static_cast<float>(rng.normal(0.0, 1.0)));
  }
  sample.sparse.resize(tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    for (int k = 0; k < config_.indices_per_table; ++k) {
      sample.sparse[t].push_back(static_cast<int>(
          rng.uniform_int(0, config_.table_rows[t] - 1)));
    }
  }
  return sample;
}

DataSize DlrmModel::embedding_bytes() const {
  double total = 0.0;
  for (const optim::EmbeddingTable& t : tables_) {
    total += to_bytes(t.size_bytes());
  }
  return bytes(total);
}

DataSize DlrmModel::mlp_bytes() const {
  return bytes(static_cast<double>(bottom_.parameter_count() +
                                   top_.parameter_count()) *
               sizeof(float));
}

DataSize DlrmModel::model_bytes() const {
  return embedding_bytes() + mlp_bytes();
}

double DlrmModel::embedding_fraction() const {
  return to_bytes(embedding_bytes()) / to_bytes(model_bytes());
}

DataSize DlrmModel::embedding_bytes_per_inference(
    optim::NumericFormat format) const {
  const double rows_read =
      static_cast<double>(tables_.size()) * config_.indices_per_table;
  double per_row = static_cast<double>(config_.embedding_dim) *
                   static_cast<double>(optim::bytes_per_element(format));
  if (format == optim::NumericFormat::kInt8RowWise) {
    per_row += sizeof(float);  // the row scale travels with the row
  }
  return bytes(rows_read * per_row);
}

}  // namespace sustainai::recsys
