// SGD training for the mini-DLRM (the workload whose energy/quality
// trade-offs Figures 4, 6 and 12 reason about — here made runnable).
//
// A teacher model labels synthetic traffic; a student DLRM-style model
// (bottom MLP -> single-hot embedding lookups -> pairwise dot interactions
// -> top MLP -> sigmoid) trains with plain SGD on the logistic loss,
// back-propagating through the full architecture including the embedding
// rows. Training work is accounted in FLOPs so energy follows from a
// device's achievable FLOP/s and power — letting the scaling experiments
// of Figure 12 be re-run on an actual model instead of a closed-form law.
#pragma once

#include <span>
#include <vector>

#include "core/units.h"
#include "datagen/rng.h"
#include "recsys/mlp.h"

namespace sustainai::recsys {

struct TrainableDlrmConfig {
  int dense_features = 8;
  std::vector<int> table_rows = {2000, 1000};  // single-hot per table
  int embedding_dim = 8;
  int bottom_hidden = 16;
  int top_hidden = 16;
  std::uint64_t seed = 99;
};

// One labeled example: dense features, one index per table, click label.
struct LabeledSample {
  std::vector<float> dense;
  std::vector<int> indices;
  float label = 0.0f;
};

class TrainableDlrm {
 public:
  explicit TrainableDlrm(TrainableDlrmConfig config);

  // Click probability.
  [[nodiscard]] float predict(const LabeledSample& sample) const;

  // Batched inference: the bottom and top MLPs run as blocked GEMMs over
  // the whole minibatch (embedding pooling and interactions stay
  // per-sample). Bit-identical to calling predict() per sample — the
  // batched kernels preserve per-sample accumulation order.
  [[nodiscard]] std::vector<float> predict_batch(
      std::span<const LabeledSample> samples) const;

  // One SGD step on the logistic loss; returns the loss before the update.
  float train_step(const LabeledSample& sample, float learning_rate);

  // Mean logistic loss over a dataset.
  [[nodiscard]] double evaluate(const std::vector<LabeledSample>& data) const;

  // Multiply-accumulate count of one forward (+~2x for backward).
  [[nodiscard]] std::size_t flops_per_example() const;

  [[nodiscard]] const TrainableDlrmConfig& config() const { return config_; }

 private:
  struct ForwardCache;
  void forward_internal(const LabeledSample& sample, ForwardCache& cache) const;

  TrainableDlrmConfig config_;
  std::vector<std::vector<float>> tables_;  // [table][row * dim + d]
  Mlp bottom_;
  Mlp top_;
};

// Generates a labeled dataset from a hidden teacher of the same family.
// With `soft_labels` the label is the teacher's (sharpened) click
// probability instead of a Bernoulli draw — useful for low-variance
// held-out evaluation (cross-entropy against soft targets).
[[nodiscard]] std::vector<LabeledSample> synthesize_ctr_dataset(
    const TrainableDlrmConfig& config, int num_samples, std::uint64_t seed,
    bool soft_labels = false);

// Fault injection for a training run (paper Appendix B): silent data
// corruption is detected mid-run and forces a rollback to the last
// checkpoint. Replay from a checkpoint is deterministic here — the same
// weights come out — so the rollback is charged as redone examples and
// wasted FLOPs without re-executing it: losses are bit-identical to the
// fault-free run while energy grows.
struct TrainingFaultConfig {
  double sdc_per_million_examples = 0.0;
  long checkpoint_every_examples = 0;  // 0: only the initial state is saved
  // Overhead of taking one checkpoint, in example-equivalents of work.
  double checkpoint_cost_examples = 0.0;
  std::uint64_t seed = 0;
  [[nodiscard]] bool enabled() const { return sdc_per_million_examples > 0.0; }
};

struct TrainingRunResult {
  std::vector<double> epoch_losses;  // held-out logloss after each epoch
  double final_loss = 0.0;
  double total_gflops = 0.0;
  // Fault-injection outcomes; all-zero when faults are disabled.
  long sdc_events = 0;
  long checkpoints = 0;
  double redone_examples = 0.0;
  double wasted_gflops = 0.0;      // redone work after SDC rollbacks
  double checkpoint_gflops = 0.0;  // checkpointing overhead
  // Energy on a device achieving `achieved_gflops_per_joule`.
  [[nodiscard]] Energy energy(double achieved_gflops_per_joule) const;
};

// Trains on `train`, evaluates on `holdout` each epoch.
[[nodiscard]] TrainingRunResult train_dlrm(TrainableDlrm& model,
                                           const std::vector<LabeledSample>& train,
                                           const std::vector<LabeledSample>& holdout,
                                           int epochs, float learning_rate);

// As above, with SDC fault injection. The schedule is drawn via fault::
// FaultPlan over an example-count timebase, so it is deterministic in
// `faults.seed` and independent of threading.
[[nodiscard]] TrainingRunResult train_dlrm(TrainableDlrm& model,
                                           const std::vector<LabeledSample>& train,
                                           const std::vector<LabeledSample>& holdout,
                                           int epochs, float learning_rate,
                                           const TrainingFaultConfig& faults);

}  // namespace sustainai::recsys
