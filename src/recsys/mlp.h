// Dense multi-layer perceptron — the "computationally-intensive" FC
// sub-net of a recommendation model (Section III-B: "There are two primary
// sub-nets in a RM: the dense fully-connected (FC) network and the sparse
// embedding-based network").
#pragma once

#include <span>
#include <vector>

#include "datagen/rng.h"

namespace sustainai::recsys {

// One fully-connected layer with optional ReLU.
class DenseLayer {
 public:
  DenseLayer(int in_features, int out_features, bool relu);

  static DenseLayer random(int in_features, int out_features, bool relu,
                           datagen::Rng& rng);

  // `out` must have size out_features(); `in` size in_features().
  void forward(std::span<const float> in, std::span<float> out) const;

  // Batched forward: `in` is `batch` x in_features() row-major, `out` is
  // `batch` x out_features(). Implemented as a register-tiled blocked GEMM
  // whose per-(row, output) accumulation order is fixed independently of
  // the block size, so the result is bit-identical to calling forward()
  // once per row. Size checks run once per call, not once per row.
  void forward_batch(std::span<const float> in, std::span<float> out,
                     int batch) const;

  [[nodiscard]] int in_features() const { return in_features_; }
  [[nodiscard]] int out_features() const { return out_features_; }
  [[nodiscard]] bool has_relu() const { return relu_; }
  [[nodiscard]] std::size_t parameter_count() const;
  float& weight(int out, int in);
  [[nodiscard]] float weight(int out, int in) const;
  float& bias(int out) { return bias_[static_cast<std::size_t>(out)]; }
  [[nodiscard]] float bias(int out) const {
    return bias_[static_cast<std::size_t>(out)];
  }

 private:
  // Unchecked single-sample GEMV; callers have validated sizes.
  void forward_one(const float* in, float* out) const;

  int in_features_;
  int out_features_;
  bool relu_;
  std::vector<float> weights_;  // row-major [out][in]
  std::vector<float> bias_;
};

// A stack of DenseLayers; ReLU on all but the last.
class Mlp {
 public:
  // `widths` = {in, hidden..., out}; needs at least in and out.
  Mlp(const std::vector<int>& widths, datagen::Rng& rng);

  [[nodiscard]] std::vector<float> forward(std::span<const float> in) const;

  // Batched forward over `batch` rows ([batch x in_features()] row-major in,
  // [batch x out_features()] out). Bit-identical to forward() per row; each
  // layer runs as one blocked GEMM (see DenseLayer::forward_batch).
  [[nodiscard]] std::vector<float> forward_batch(std::span<const float> in,
                                                 int batch) const;

  [[nodiscard]] int in_features() const;
  [[nodiscard]] int out_features() const;
  [[nodiscard]] std::size_t parameter_count() const;

  // Layer access for training (backpropagation lives in trainer.h).
  [[nodiscard]] const std::vector<DenseLayer>& layers() const { return layers_; }
  [[nodiscard]] std::vector<DenseLayer>& layers() { return layers_; }

 private:
  std::vector<DenseLayer> layers_;
};

// Numerically stable logistic.
[[nodiscard]] float sigmoid(float x);

}  // namespace sustainai::recsys
