#include "recsys/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sustainai::recsys {
namespace {

// Per-MLP activations: inputs[i] feeds layer i; inputs[L] is the output.
struct MlpCache {
  std::vector<std::vector<float>> inputs;
};

void mlp_forward_cached(const Mlp& mlp, std::span<const float> in,
                        MlpCache& cache) {
  cache.inputs.clear();
  cache.inputs.emplace_back(in.begin(), in.end());
  for (const DenseLayer& layer : mlp.layers()) {
    std::vector<float> out(static_cast<std::size_t>(layer.out_features()));
    layer.forward(cache.inputs.back(), out);
    cache.inputs.push_back(std::move(out));
  }
}

// SGD backward through the whole MLP; returns dL/dinput. Gradients are
// computed with pre-update weights, then weights are updated in place.
std::vector<float> mlp_backward(Mlp& mlp, const MlpCache& cache,
                                std::vector<float> dout, float lr) {
  for (std::size_t li = mlp.layers().size(); li-- > 0;) {
    DenseLayer& layer = mlp.layers()[li];
    const std::vector<float>& x = cache.inputs[li];
    const std::vector<float>& out = cache.inputs[li + 1];
    // ReLU mask.
    std::vector<float> dpre = dout;
    if (layer.has_relu()) {
      for (int o = 0; o < layer.out_features(); ++o) {
        if (out[static_cast<std::size_t>(o)] <= 0.0f) {
          dpre[static_cast<std::size_t>(o)] = 0.0f;
        }
      }
    }
    // dL/dx with pre-update weights.
    std::vector<float> dx(static_cast<std::size_t>(layer.in_features()), 0.0f);
    for (int o = 0; o < layer.out_features(); ++o) {
      const float g = dpre[static_cast<std::size_t>(o)];
      if (g == 0.0f) {
        continue;
      }
      for (int i = 0; i < layer.in_features(); ++i) {
        dx[static_cast<std::size_t>(i)] += layer.weight(o, i) * g;
      }
    }
    // SGD update.
    for (int o = 0; o < layer.out_features(); ++o) {
      const float g = dpre[static_cast<std::size_t>(o)];
      if (g == 0.0f) {
        continue;
      }
      for (int i = 0; i < layer.in_features(); ++i) {
        layer.weight(o, i) -= lr * g * x[static_cast<std::size_t>(i)];
      }
      layer.bias(o) -= lr * g;
    }
    dout = std::move(dx);
  }
  return dout;
}

std::vector<int> bottom_widths(const TrainableDlrmConfig& c) {
  return {c.dense_features, c.bottom_hidden, c.embedding_dim};
}

int interaction_count(const TrainableDlrmConfig& c) {
  const int vectors = static_cast<int>(c.table_rows.size()) + 1;
  return vectors * (vectors - 1) / 2;
}

std::vector<int> top_widths(const TrainableDlrmConfig& c) {
  return {interaction_count(c) + c.embedding_dim, c.top_hidden, 1};
}

Mlp make_mlp(const std::vector<int>& widths, std::uint64_t seed) {
  datagen::Rng rng(seed);
  return Mlp(widths, rng);
}

float logloss(float p, float y) {
  constexpr float kEps = 1e-7f;
  const float clamped = std::min(std::max(p, kEps), 1.0f - kEps);
  return -(y * std::log(clamped) + (1.0f - y) * std::log(1.0f - clamped));
}

}  // namespace

struct TrainableDlrm::ForwardCache {
  MlpCache bottom;
  std::vector<std::vector<float>> pooled;  // one vector per table
  std::vector<float> top_input;
  MlpCache top;
  float probability = 0.0f;
};

TrainableDlrm::TrainableDlrm(TrainableDlrmConfig config)
    : config_(std::move(config)),
      bottom_(make_mlp(bottom_widths(config_), config_.seed ^ 0x1111ULL)),
      top_(make_mlp(top_widths(config_), config_.seed ^ 0x2222ULL)) {
  check_arg(!config_.table_rows.empty(), "TrainableDlrm: need >= 1 table");
  check_arg(config_.embedding_dim >= 1,
            "TrainableDlrm: embedding_dim must be >= 1");
  datagen::Rng rng(config_.seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(config_.embedding_dim));
  for (int rows : config_.table_rows) {
    check_arg(rows >= 1, "TrainableDlrm: table rows must be >= 1");
    std::vector<float> table(static_cast<std::size_t>(rows) *
                             config_.embedding_dim);
    for (float& v : table) {
      v = static_cast<float>(rng.normal(0.0, scale));
    }
    tables_.push_back(std::move(table));
  }
}

void TrainableDlrm::forward_internal(const LabeledSample& sample,
                                     ForwardCache& cache) const {
  check_arg(sample.indices.size() == tables_.size(),
            "TrainableDlrm: wrong number of sparse indices");
  check_arg(static_cast<int>(sample.dense.size()) == config_.dense_features,
            "TrainableDlrm: wrong dense feature count");
  mlp_forward_cached(bottom_, sample.dense, cache.bottom);
  const std::vector<float>& b = cache.bottom.inputs.back();
  const int d = config_.embedding_dim;

  cache.pooled.clear();
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const int idx = sample.indices[t];
    check_arg(idx >= 0 && idx < config_.table_rows[t],
              "TrainableDlrm: sparse index out of range");
    const float* row = tables_[t].data() + static_cast<std::size_t>(idx) * d;
    cache.pooled.emplace_back(row, row + d);
  }

  // Interactions among [b, e_1 .. e_T], then concat b.
  cache.top_input.clear();
  std::vector<const std::vector<float>*> vecs;
  vecs.push_back(&b);
  for (const auto& p : cache.pooled) {
    vecs.push_back(&p);
  }
  for (std::size_t a = 0; a < vecs.size(); ++a) {
    for (std::size_t c = a + 1; c < vecs.size(); ++c) {
      float dot = 0.0f;
      for (int j = 0; j < d; ++j) {
        dot += (*vecs[a])[static_cast<std::size_t>(j)] *
               (*vecs[c])[static_cast<std::size_t>(j)];
      }
      cache.top_input.push_back(dot);
    }
  }
  cache.top_input.insert(cache.top_input.end(), b.begin(), b.end());

  mlp_forward_cached(top_, cache.top_input, cache.top);
  cache.probability = sigmoid(cache.top.inputs.back()[0]);
}

float TrainableDlrm::predict(const LabeledSample& sample) const {
  ForwardCache cache;
  forward_internal(sample, cache);
  return cache.probability;
}

std::vector<float> TrainableDlrm::predict_batch(
    std::span<const LabeledSample> samples) const {
  const auto n = static_cast<int>(samples.size());
  const int d = config_.embedding_dim;

  // Gather dense features (validating every sample once, outside the
  // kernels) and run the bottom MLP as one blocked GEMM.
  std::vector<float> dense(static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(config_.dense_features));
  for (int s = 0; s < n; ++s) {
    const LabeledSample& sample = samples[static_cast<std::size_t>(s)];
    check_arg(sample.indices.size() == tables_.size(),
              "TrainableDlrm: wrong number of sparse indices");
    check_arg(static_cast<int>(sample.dense.size()) == config_.dense_features,
              "TrainableDlrm: wrong dense feature count");
    std::copy(sample.dense.begin(), sample.dense.end(),
              dense.begin() + static_cast<std::size_t>(s) *
                                  static_cast<std::size_t>(
                                      config_.dense_features));
  }
  const std::vector<float> bottom_out = bottom_.forward_batch(dense, n);

  // Per-sample embedding lookups and pairwise interactions feeding one
  // [n x top_in] matrix for the top MLP.
  const std::size_t num_vectors = tables_.size() + 1;
  const std::size_t num_interactions = num_vectors * (num_vectors - 1) / 2;
  const std::size_t top_in_width =
      num_interactions + static_cast<std::size_t>(d);
  std::vector<float> top_input(static_cast<std::size_t>(n) * top_in_width);
  std::vector<const float*> vecs(num_vectors);
  for (int s = 0; s < n; ++s) {
    const LabeledSample& sample = samples[static_cast<std::size_t>(s)];
    const float* b =
        bottom_out.data() + static_cast<std::size_t>(s) * static_cast<std::size_t>(d);
    vecs[0] = b;
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const int idx = sample.indices[t];
      check_arg(idx >= 0 && idx < config_.table_rows[t],
                "TrainableDlrm: sparse index out of range");
      vecs[t + 1] = tables_[t].data() + static_cast<std::size_t>(idx) * d;
    }
    float* dst = top_input.data() + static_cast<std::size_t>(s) * top_in_width;
    std::size_t k = 0;
    for (std::size_t a = 0; a < num_vectors; ++a) {
      for (std::size_t c = a + 1; c < num_vectors; ++c, ++k) {
        float dot = 0.0f;
        for (int j = 0; j < d; ++j) {
          dot += vecs[a][j] * vecs[c][j];
        }
        dst[k] = dot;
      }
    }
    for (int j = 0; j < d; ++j) {
      dst[num_interactions + static_cast<std::size_t>(j)] = b[j];
    }
  }

  const std::vector<float> logits = top_.forward_batch(top_input, n);
  std::vector<float> probabilities(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    probabilities[static_cast<std::size_t>(s)] =
        sigmoid(logits[static_cast<std::size_t>(s)]);
  }
  return probabilities;
}

float TrainableDlrm::train_step(const LabeledSample& sample,
                                float learning_rate) {
  check_arg(learning_rate > 0.0f, "train_step: learning rate must be positive");
  ForwardCache cache;
  forward_internal(sample, cache);
  const float loss = logloss(cache.probability, sample.label);

  // d logloss / d logit = p - y.
  std::vector<float> dlogit = {cache.probability - sample.label};
  const std::vector<float> dtop_in =
      mlp_backward(top_, cache.top, std::move(dlogit), learning_rate);

  const int d = config_.embedding_dim;
  const std::size_t num_vectors = tables_.size() + 1;
  const std::size_t num_interactions = num_vectors * (num_vectors - 1) / 2;

  // Gradients on the interaction vectors [b, e_1 .. e_T].
  const std::vector<float>& b = cache.bottom.inputs.back();
  std::vector<const std::vector<float>*> vecs;
  vecs.push_back(&b);
  for (const auto& p : cache.pooled) {
    vecs.push_back(&p);
  }
  std::vector<std::vector<float>> dvec(
      num_vectors, std::vector<float>(static_cast<std::size_t>(d), 0.0f));
  std::size_t k = 0;
  for (std::size_t a = 0; a < num_vectors; ++a) {
    for (std::size_t c = a + 1; c < num_vectors; ++c, ++k) {
      const float g = dtop_in[k];
      if (g == 0.0f) {
        continue;
      }
      for (int j = 0; j < d; ++j) {
        dvec[a][static_cast<std::size_t>(j)] +=
            g * (*vecs[c])[static_cast<std::size_t>(j)];
        dvec[c][static_cast<std::size_t>(j)] +=
            g * (*vecs[a])[static_cast<std::size_t>(j)];
      }
    }
  }
  // The concatenated copy of b contributes directly.
  for (int j = 0; j < d; ++j) {
    dvec[0][static_cast<std::size_t>(j)] +=
        dtop_in[num_interactions + static_cast<std::size_t>(j)];
  }

  // Update embedding rows.
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    float* row = tables_[t].data() +
                 static_cast<std::size_t>(sample.indices[t]) * d;
    for (int j = 0; j < d; ++j) {
      row[j] -= learning_rate * dvec[t + 1][static_cast<std::size_t>(j)];
    }
  }

  // Backprop through the bottom MLP.
  mlp_backward(bottom_, cache.bottom, std::move(dvec[0]), learning_rate);
  return loss;
}

double TrainableDlrm::evaluate(const std::vector<LabeledSample>& data) const {
  check_arg(!data.empty(), "evaluate: empty dataset");
  // Minibatched inference; losses still accumulate in dataset order, so the
  // mean is bit-identical to the per-sample loop this replaced.
  constexpr std::size_t kEvalBatch = 256;
  double sum = 0.0;
  for (std::size_t begin = 0; begin < data.size(); begin += kEvalBatch) {
    const std::size_t count = std::min(kEvalBatch, data.size() - begin);
    // Sim timebase here is the sample index, so batch spans tile [0, n).
    obs::Span batch_span("dlrm.predict_batch",
                         static_cast<double>(begin),
                         static_cast<double>(begin + count));
    const std::vector<float> p =
        predict_batch({data.data() + begin, count});
    for (std::size_t i = 0; i < count; ++i) {
      sum += logloss(p[i], data[begin + i].label);
    }
  }
  return sum / static_cast<double>(data.size());
}

std::size_t TrainableDlrm::flops_per_example() const {
  const std::size_t mlp_macs =
      bottom_.parameter_count() + top_.parameter_count();
  const std::size_t interaction_macs =
      static_cast<std::size_t>(interaction_count(config_)) *
      static_cast<std::size_t>(config_.embedding_dim);
  return 2 * (mlp_macs + interaction_macs);  // MAC = 2 FLOPs
}

std::vector<LabeledSample> synthesize_ctr_dataset(
    const TrainableDlrmConfig& config, int num_samples, std::uint64_t seed,
    bool soft_labels) {
  check_arg(num_samples >= 1, "synthesize_ctr_dataset: need >= 1 sample");
  // The teacher is a fixed function of the model family (config.seed), so
  // different data seeds draw different samples from the SAME ground truth.
  TrainableDlrmConfig teacher_config = config;
  teacher_config.seed = config.seed ^ 0x7ea4e12ULL;
  const TrainableDlrm teacher(teacher_config);
  datagen::Rng rng(seed);
  std::vector<LabeledSample> data;
  data.reserve(static_cast<std::size_t>(num_samples));
  for (int i = 0; i < num_samples; ++i) {
    LabeledSample s;
    s.dense.reserve(static_cast<std::size_t>(config.dense_features));
    for (int f = 0; f < config.dense_features; ++f) {
      s.dense.push_back(static_cast<float>(rng.normal(0.0, 1.0)));
    }
    for (int rows : config.table_rows) {
      s.indices.push_back(static_cast<int>(rng.uniform_int(0, rows - 1)));
    }
    // Sharpen the teacher's logit so the signal dominates label noise.
    const float p = teacher.predict(s);
    const float logit = std::log(std::max(p, 1e-6f) / std::max(1.0f - p, 1e-6f));
    const float sharpened = sigmoid(4.0f * logit);
    s.label = soft_labels ? sharpened : (rng.bernoulli(sharpened) ? 1.0f : 0.0f);
    data.push_back(std::move(s));
  }
  return data;
}

Energy TrainingRunResult::energy(double achieved_gflops_per_joule) const {
  check_arg(achieved_gflops_per_joule > 0.0,
            "TrainingRunResult: efficiency must be positive");
  return joules(total_gflops / achieved_gflops_per_joule);
}

TrainingRunResult train_dlrm(TrainableDlrm& model,
                             const std::vector<LabeledSample>& train,
                             const std::vector<LabeledSample>& holdout,
                             int epochs, float learning_rate) {
  return train_dlrm(model, train, holdout, epochs, learning_rate,
                    TrainingFaultConfig{});
}

TrainingRunResult train_dlrm(TrainableDlrm& model,
                             const std::vector<LabeledSample>& train,
                             const std::vector<LabeledSample>& holdout,
                             int epochs, float learning_rate,
                             const TrainingFaultConfig& faults) {
  check_arg(epochs >= 1, "train_dlrm: need >= 1 epoch");
  check_arg(!train.empty() && !holdout.empty(),
            "train_dlrm: datasets must be non-empty");
  datagen::Rng rng(model.config().seed ^ 0x5ff1eULL);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainingRunResult result;
  obs::Counter& examples_trained =
      obs::MetricsRegistry::global().counter("dlrm_examples_trained");
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // Sim timebase for training spans is the epoch index.
    obs::Span epoch_span("dlrm.epoch", static_cast<double>(epoch),
                         static_cast<double>(epoch + 1));
    // Fisher-Yates shuffle.
    for (std::size_t i = order.size(); i-- > 1;) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i)));
      std::swap(order[i], order[j]);
    }
    for (std::size_t idx : order) {
      model.train_step(train[idx], learning_rate);
    }
    result.epoch_losses.push_back(model.evaluate(holdout));
    examples_trained.add(static_cast<double>(train.size()));
  }
  result.final_loss = result.epoch_losses.back();
  // Forward ~ flops_per_example; backward ~ 2x forward.
  const double gflops_per_example =
      static_cast<double>(model.flops_per_example()) * 3.0 / 1e9;
  result.total_gflops = gflops_per_example *
                        static_cast<double>(train.size()) * epochs;

  if (faults.enabled()) {
    // The fault timebase is the global example counter (one example ~ one
    // unit of work), so the SDC schedule is a pure function of the fault
    // seed and the run length. A detected SDC rolls the run back to the
    // last checkpoint; deterministic replay reproduces the exact weights,
    // so only the accounting changes — epoch losses stay bit-identical to
    // the fault-free run.
    const double total_examples =
        static_cast<double>(train.size()) * epochs;
    fault::FaultRates rates;
    rates.sdc_per_day =
        faults.sdc_per_million_examples * (kSecondsPerDay / 1e6);
    const fault::FaultPlan plan(rates, seconds(total_examples), faults.seed);
    const double interval =
        static_cast<double>(faults.checkpoint_every_examples);
    for (const fault::FaultEvent& e :
         plan.events_of(fault::FaultKind::kSilentCorruption)) {
      const double at = to_seconds(e.time);  // example index
      const double last_checkpoint =
          interval > 0.0 ? std::floor(at / interval) * interval : 0.0;
      ++result.sdc_events;
      result.redone_examples += at - last_checkpoint;
    }
    result.checkpoints =
        interval > 0.0
            ? static_cast<long>(std::floor(total_examples / interval))
            : 0;
    result.wasted_gflops = result.redone_examples * gflops_per_example;
    result.checkpoint_gflops = static_cast<double>(result.checkpoints) *
                               faults.checkpoint_cost_examples *
                               gflops_per_example;
    result.total_gflops +=
        result.wasted_gflops + result.checkpoint_gflops;
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
    metrics.counter("dlrm_sdc_events")
        .add(static_cast<double>(result.sdc_events));
    metrics.counter("dlrm_redone_examples").add(result.redone_examples);
  }
  return result;
}

}  // namespace sustainai::recsys
