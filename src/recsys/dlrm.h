// A miniature DLRM-class recommendation model (Naumov et al., the paper's
// reference RM architecture): a bottom MLP over dense features, sparse
// embedding bags over categorical features, pairwise dot-product feature
// interactions, and a top MLP producing a click probability.
//
// The model is real, runnable C++ — it is what the quantization experiment
// (Section III-B) operates on: embedding tables can be served in fp32,
// fp16, bf16, or row-wise int8, and the class accounts model size, the
// >= 95% embedding share, and bytes touched per inference.
#pragma once

#include <span>
#include <vector>

#include "core/units.h"
#include "datagen/rng.h"
#include "optim/quantization.h"
#include "recsys/mlp.h"

namespace sustainai::recsys {

struct DlrmConfig {
  int dense_features = 13;
  std::vector<int> table_rows = {100000, 50000, 20000, 10000, 5000};
  int embedding_dim = 32;
  // Hidden widths; input/output widths are derived.
  std::vector<int> bottom_hidden = {64, 32};
  std::vector<int> top_hidden = {64, 32};
  // Multi-hot lookups per table per sample.
  int indices_per_table = 4;
  std::uint64_t seed = 1234;
};

// One inference request: dense features + per-table index lists.
struct DlrmSample {
  std::vector<float> dense;
  std::vector<std::vector<int>> sparse;  // one vector of indices per table
};

class DlrmModel {
 public:
  explicit DlrmModel(DlrmConfig config);

  // Click probability in (0, 1).
  [[nodiscard]] float forward(const DlrmSample& sample) const;

  // Batched fp32 forward: the bottom and top MLPs run as blocked GEMMs over
  // all samples (embedding pooling and interactions stay per-sample).
  // Bit-identical to calling forward() per sample.
  [[nodiscard]] std::vector<float> forward_batch(
      std::span<const DlrmSample> samples) const;

  // Forward pass with embedding tables served from quantized storage;
  // `format` selects the serving precision of every table.
  [[nodiscard]] float forward_quantized(const DlrmSample& sample,
                                        optim::NumericFormat format) const;

  // Draws a valid random sample (indices within table bounds).
  [[nodiscard]] DlrmSample random_sample(datagen::Rng& rng) const;

  // --- Size and traffic accounting (Section III-B) ---
  [[nodiscard]] DataSize embedding_bytes() const;
  [[nodiscard]] DataSize mlp_bytes() const;
  [[nodiscard]] DataSize model_bytes() const;
  // Share of model bytes held in embedding tables (>= 95% for real RMs).
  [[nodiscard]] double embedding_fraction() const;
  // Embedding bytes read per inference at the given serving precision.
  [[nodiscard]] DataSize embedding_bytes_per_inference(
      optim::NumericFormat format) const;

  [[nodiscard]] const DlrmConfig& config() const { return config_; }

 private:
  // Pools (sums) embedding rows for one table; `getter(row, d)` reads a
  // weight in the requested precision.
  template <typename Getter>
  void pool_table(std::size_t table, std::span<const int> indices,
                  Getter&& getter, std::span<float> out) const;

  [[nodiscard]] float interact_and_score(std::span<const float> bottom_out,
                                         const std::vector<std::vector<float>>&
                                             pooled) const;

  DlrmConfig config_;
  std::vector<optim::EmbeddingTable> tables_;
  // Lazily-built quantized copies per format (built in the constructor for
  // the three quantized formats so forward_quantized is const and cheap).
  std::vector<optim::QuantizedTable> fp16_tables_;
  std::vector<optim::QuantizedTable> bf16_tables_;
  std::vector<optim::QuantizedTable> int8_tables_;
  Mlp bottom_;
  Mlp top_;
};

}  // namespace sustainai::recsys
