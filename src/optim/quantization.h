// Model quantization for recommendation models (Section III-B).
//
// "By converting 32-bit floating-point numerical representation to 16-bit,
// we can reduce the overall RM2 model size by 15% ... 20.7% reduction in
// memory bandwidth consumption. Furthermore ... for RM1, quantization has
// enabled RM deployment on highly power-efficient systems with smaller
// on-chip memory, leading to an end-to-end inference latency improvement
// of 2.5 times."
//
// This module contains *real* conversion kernels — IEEE 754 binary16,
// bfloat16, and row-wise symmetric int8 over embedding tables — plus the
// model-level size/bandwidth/latency accounting built on top of them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/units.h"
#include "datagen/rng.h"

namespace sustainai::optim {

// --- Scalar numeric conversions ----------------------------------------------

// float -> IEEE 754 binary16, round-to-nearest-even, with denormal,
// overflow-to-infinity, and NaN handling.
[[nodiscard]] std::uint16_t float_to_half(float value);
[[nodiscard]] float half_to_float(std::uint16_t half);

// float -> bfloat16 (truncated-exponent format), round-to-nearest-even.
[[nodiscard]] std::uint16_t float_to_bfloat16(float value);
[[nodiscard]] float bfloat16_to_float(std::uint16_t bf);

// --- Embedding tables ----------------------------------------------------------

// Dense row-major embedding table (the >= 95%-of-model-size structure in
// production RMs).
class EmbeddingTable {
 public:
  EmbeddingTable(int rows, int dim);

  // Gaussian-initialized table (scale ~ 1/sqrt(dim), as trained tables are).
  static EmbeddingTable random(int rows, int dim, datagen::Rng& rng);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] float at(int row, int d) const;
  float& at(int row, int d);
  [[nodiscard]] std::span<const float> row(int r) const;
  [[nodiscard]] DataSize size_bytes() const;

 private:
  int rows_;
  int dim_;
  std::vector<float> data_;
};

enum class NumericFormat { kFp32, kFp16, kBf16, kInt8RowWise };
[[nodiscard]] const char* to_string(NumericFormat format);
// Payload bytes per element (excludes row scales for int8).
[[nodiscard]] std::size_t bytes_per_element(NumericFormat format);

// A quantized copy of an embedding table.
class QuantizedTable {
 public:
  [[nodiscard]] NumericFormat format() const { return format_; }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int dim() const { return dim_; }
  // Dequantized value (what inference reads back).
  [[nodiscard]] float dequantize(int row, int d) const;
  // Total bytes including per-row scales where applicable.
  [[nodiscard]] DataSize size_bytes() const;

 private:
  friend QuantizedTable quantize(const EmbeddingTable& table, NumericFormat format);
  NumericFormat format_ = NumericFormat::kFp32;
  int rows_ = 0;
  int dim_ = 0;
  std::vector<float> fp32_;
  std::vector<std::uint16_t> half_;   // fp16 or bf16 payload
  std::vector<std::int8_t> int8_;
  std::vector<float> row_scale_;      // int8 row-wise symmetric scales
};

[[nodiscard]] QuantizedTable quantize(const EmbeddingTable& table,
                                      NumericFormat format);

struct QuantizationError {
  double max_abs = 0.0;
  double mean_abs = 0.0;
  double rms = 0.0;
};

[[nodiscard]] QuantizationError measure_error(const EmbeddingTable& original,
                                              const QuantizedTable& quantized);

// --- RM-level accounting --------------------------------------------------------

// Size/bandwidth effects of quantizing a subset of an RM's tables.
struct RmQuantizationPlan {
  // Share of model bytes held in embedding tables (>= 95% for RMs).
  double embedding_fraction = 0.96;
  // Share of *model bytes* actually converted to the target format. (Hot,
  // accuracy-sensitive tables are kept in fp32, so this is < 1.)
  double quantized_size_fraction = 0.30;
  // Share of *memory traffic* that hits converted tables (hot tables are
  // read more often than their size share).
  double quantized_access_fraction = 0.414;
  NumericFormat format = NumericFormat::kFp16;

  // Fractional reduction in total model size (e.g. 0.15 = 15%).
  [[nodiscard]] double size_reduction() const;
  // Fractional reduction in memory bandwidth consumption.
  [[nodiscard]] double bandwidth_reduction() const;
};

// Serving latency: compute plus memory traffic served from on-chip SRAM
// when the working set fits, and from DRAM otherwise. Quantization shrinks
// the working set below the on-chip capacity of small power-efficient
// accelerators, producing the step-function 2.5x latency gain.
struct InferenceLatencyModel {
  Duration compute_time = seconds(1e-3);
  DataSize bytes_per_inference = megabytes(8.0);
  Bandwidth offchip_bandwidth = gigabytes_per_second(25.6);
  Bandwidth onchip_bandwidth = gigabytes_per_second(400.0);
  DataSize onchip_capacity = megabytes(64.0);

  // `working_set` decides the tier; `bytes_scale` scales traffic (< 1 after
  // quantization).
  [[nodiscard]] Duration latency(DataSize working_set, double bytes_scale) const;
};

}  // namespace sustainai::optim
