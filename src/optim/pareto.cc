#include "optim/pareto.h"

#include <algorithm>

namespace sustainai::optim {

bool dominates(const ObjectivePoint& a, const ObjectivePoint& b) {
  const bool no_worse = a.cost <= b.cost && a.quality >= b.quality;
  const bool strictly_better = a.cost < b.cost || a.quality > b.quality;
  return no_worse && strictly_better;
}

std::vector<std::size_t> pareto_frontier(std::span<const ObjectivePoint> points) {
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j != i && dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      frontier.push_back(i);
    }
  }
  std::sort(frontier.begin(), frontier.end(), [&](std::size_t a, std::size_t b) {
    return points[a].cost < points[b].cost;
  });
  return frontier;
}

std::size_t cheapest_at_least(std::span<const ObjectivePoint> points,
                              double min_quality) {
  std::size_t best = points.size();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].quality >= min_quality &&
        (best == points.size() || points[i].cost < points[best].cost)) {
      best = i;
    }
  }
  return best;
}

std::size_t best_under_budget(std::span<const ObjectivePoint> points,
                              double budget) {
  std::size_t best = points.size();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].cost <= budget &&
        (best == points.size() || points[i].quality > points[best].quality)) {
      best = i;
    }
  }
  return best;
}

}  // namespace sustainai::optim
