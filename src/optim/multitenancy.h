// Accelerator virtualization and multi-tenancy (Section IV-C).
//
// "A significant portion of machine learning model experimentation utilizes
// GPUs at only 30-50% ... Virtualization and workload consolidation
// technologies can help maximize accelerator utilization ... Multi-tenancy
// for AI accelerators is gaining traction as an effective way to improve
// resource utilization, thereby amortizing the upfront embodied carbon
// footprint ... at the expense of potential operational carbon footprint
// increase."
//
// Model: each tenant workload demands a share of a device's compute and a
// fixed slice of device memory. Consolidation packs tenants onto devices
// (first-fit-decreasing under compute headroom + memory constraints);
// co-located tenants suffer a per-neighbor interference slowdown, so the
// same work takes longer (operational cost up) while far fewer devices are
// occupied (embodied cost down).
#pragma once

#include <string>
#include <vector>

#include "core/embodied.h"
#include "core/operational.h"
#include "core/units.h"
#include "hw/spec.h"

namespace sustainai::optim {

struct TenantWorkload {
  std::string name;
  double compute_demand = 0.4;  // average device-compute share in (0, 1]
  DataSize memory;              // resident working set
};

struct MultiTenancyConfig {
  // Max aggregate compute demand packed on one device.
  double compute_headroom = 0.85;
  // Fractional throughput loss per co-located neighbor (cache/bandwidth
  // interference); a tenant with k neighbors runs at 1/(1 + penalty * k).
  double interference_penalty = 0.06;
  // Fleet-average utilization used to amortize device embodied carbon.
  double embodied_amortization_utilization = 0.45;
};

struct PlacementResult {
  int devices_used = 0;
  // Aggregate compute demand / devices used (how busy the fleet looks).
  double mean_device_utilization = 0.0;
  // Work completed per unit time relative to fully-isolated execution
  // (< 1 under interference: the same work takes 1/x longer).
  double throughput_efficiency = 1.0;
  // Per-device tenant counts (diagnostics).
  std::vector<int> tenants_per_device;
};

// One device per tenant (today's dedicated-allocation baseline).
[[nodiscard]] PlacementResult dedicated_placement(
    const std::vector<TenantWorkload>& tenants, const hw::DeviceSpec& device);

// First-fit-decreasing consolidation under compute headroom and memory
// constraints, with the interference model applied.
[[nodiscard]] PlacementResult consolidated_placement(
    const std::vector<TenantWorkload>& tenants, const hw::DeviceSpec& device,
    const MultiTenancyConfig& config);

// Carbon of completing `busy_time` of isolated-equivalent work per tenant
// under a placement: interference stretches wall-clock time by
// 1/throughput_efficiency; every occupied device pays power at the
// placement's utilization plus amortized embodied carbon for the stretch.
struct PlacementCarbon {
  Energy energy;
  CarbonMass operational;
  CarbonMass embodied;
  [[nodiscard]] CarbonMass total() const { return operational + embodied; }
};

[[nodiscard]] PlacementCarbon placement_carbon(
    const PlacementResult& placement, const hw::DeviceSpec& device,
    Duration busy_time, const MultiTenancyConfig& config,
    const OperationalCarbonModel& operational);

}  // namespace sustainai::optim
