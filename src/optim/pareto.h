// Multi-objective (quality vs cost) utilities (Section IV-B, Figure 12).
//
// "Multi-objective optimization explores the Pareto frontier of efficient
// model quality and system resource trade-offs ... energy and carbon
// footprint can be directly incorporated into the cost function."
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sustainai::optim {

struct ObjectivePoint {
  double cost = 0.0;     // lower is better (energy, carbon, latency)
  double quality = 0.0;  // higher is better (accuracy, -loss)
  std::string label;
};

// a dominates b: no worse in both objectives, strictly better in one.
[[nodiscard]] bool dominates(const ObjectivePoint& a, const ObjectivePoint& b);

// Indices of the non-dominated points, sorted by ascending cost.
[[nodiscard]] std::vector<std::size_t> pareto_frontier(
    std::span<const ObjectivePoint> points);

// Cheapest point with quality >= `min_quality`; returns npos-like
// points.size() if none qualifies.
[[nodiscard]] std::size_t cheapest_at_least(std::span<const ObjectivePoint> points,
                                            double min_quality);

// Highest-quality point with cost <= `budget`; returns points.size() if
// none qualifies.
[[nodiscard]] std::size_t best_under_budget(std::span<const ObjectivePoint> points,
                                            double budget);

}  // namespace sustainai::optim
