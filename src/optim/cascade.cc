#include "optim/cascade.h"

#include "core/check.h"

namespace sustainai::optim {

void OptimizationCascade::add_step(OptimizationStep step) {
  check_arg(step.gain > 0.0, "OptimizationCascade: gain must be positive");
  steps_.push_back(std::move(step));
}

double OptimizationCascade::cumulative_gain() const {
  double g = 1.0;
  for (const OptimizationStep& s : steps_) {
    g *= s.gain;
  }
  return g;
}

std::vector<double> OptimizationCascade::cumulative_gains() const {
  std::vector<double> out;
  out.reserve(steps_.size());
  double g = 1.0;
  for (const OptimizationStep& s : steps_) {
    g *= s.gain;
    out.push_back(g);
  }
  return out;
}

std::vector<Energy> OptimizationCascade::energy_after_each_step(
    Energy baseline) const {
  std::vector<Energy> out;
  out.reserve(steps_.size());
  for (double g : cumulative_gains()) {
    out.push_back(baseline / g);
  }
  return out;
}

double CacheModel::energy_gain() const {
  check_arg(hit_rate >= 0.0 && hit_rate <= 1.0,
            "CacheModel: hit_rate must be in [0, 1]");
  check_arg(hit_cost_fraction > 0.0 && hit_cost_fraction <= 1.0,
            "CacheModel: hit_cost_fraction must be in (0, 1]");
  return 1.0 / (hit_rate * hit_cost_fraction + (1.0 - hit_rate));
}

double CacheModel::hit_rate_for_gain(double target_gain, double hit_cost_fraction) {
  check_arg(target_gain >= 1.0, "hit_rate_for_gain: target gain must be >= 1");
  check_arg(hit_cost_fraction > 0.0 && hit_cost_fraction < 1.0,
            "hit_rate_for_gain: hit_cost_fraction must be in (0, 1)");
  check_arg(target_gain <= 1.0 / hit_cost_fraction,
            "hit_rate_for_gain: target gain unreachable at this hit cost");
  // Solve 1/g = h*c + (1-h)  =>  h = (1 - 1/g) / (1 - c).
  return (1.0 - 1.0 / target_gain) / (1.0 - hit_cost_fraction);
}

OptimizationCascade lm_serving_cascade() {
  OptimizationCascade cascade;
  cascade.add_step({"platform-caching", 6.7,
                    "precompute + cache frequent embeddings in DRAM/flash"});
  cascade.add_step({"gpu-acceleration", 10.1,
                    "move serving from CPU hosts to GPU-based AI hardware"});
  cascade.add_step({"half-precision", 2.4, "fp32 -> fp16 operations on GPU"});
  cascade.add_step({"fused-kernels", 5.0,
                    "custom operators scheduling encoder steps in one kernel"});
  return cascade;
}

}  // namespace sustainai::optim
