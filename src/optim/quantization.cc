#include "optim/quantization.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "core/check.h"

namespace sustainai::optim {

std::uint16_t float_to_half(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t exponent = (bits >> 23) & 0xffu;
  std::uint32_t mantissa = bits & 0x7fffffu;

  if (exponent == 0xffu) {  // inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7c00u |
                                      (mantissa ? 0x200u : 0u));
  }
  // Re-bias exponent: half bias 15, float bias 127.
  const int new_exp = static_cast<int>(exponent) - 127 + 15;
  if (new_exp >= 31) {  // overflow -> infinity
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (new_exp <= 0) {  // subnormal half (or underflow to zero)
    if (new_exp < -10) {
      return static_cast<std::uint16_t>(sign);
    }
    // Add the implicit leading 1 and shift into subnormal position.
    mantissa |= 0x800000u;
    const int shift = 14 - new_exp;  // in [14, 24]
    std::uint32_t half_mant = mantissa >> shift;
    // Round to nearest even.
    const std::uint32_t round_bit = 1u << (shift - 1);
    if ((mantissa & round_bit) &&
        ((mantissa & (round_bit - 1)) || (half_mant & 1u))) {
      ++half_mant;
    }
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  // Normal half: keep the top 10 mantissa bits, round to nearest even.
  std::uint16_t half =
      static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(new_exp) << 10) |
                                 (mantissa >> 13));
  const std::uint32_t round_bit = 0x1000u;  // bit 12
  if ((mantissa & round_bit) && ((mantissa & (round_bit - 1)) || (half & 1u))) {
    ++half;  // may carry into the exponent; that is correct (rounds up to inf)
  }
  return half;
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1fu;
  std::uint32_t mantissa = half & 0x3ffu;

  std::uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {  // zero
      bits = sign;
    } else {  // subnormal: normalize
      int e = -1;
      do {
        ++e;
        mantissa <<= 1;
      } while ((mantissa & 0x400u) == 0);
      mantissa &= 0x3ffu;
      bits = sign | ((112u - static_cast<std::uint32_t>(e)) << 23) | (mantissa << 13);
    }
  } else if (exponent == 0x1fu) {  // inf / NaN
    bits = sign | 0x7f800000u | (mantissa << 13);
  } else {
    bits = sign | ((exponent + 112u) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(bits);
}

std::uint16_t float_to_bfloat16(float value) {
  std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x7fffffu)) {
    return static_cast<std::uint16_t>((bits >> 16) | 0x40u);  // quiet NaN
  }
  // Round to nearest even on the dropped 16 bits.
  const std::uint32_t rounding = 0x7fffu + ((bits >> 16) & 1u);
  bits += rounding;
  return static_cast<std::uint16_t>(bits >> 16);
}

float bfloat16_to_float(std::uint16_t bf) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bf) << 16);
}

EmbeddingTable::EmbeddingTable(int rows, int dim) : rows_(rows), dim_(dim) {
  check_arg(rows >= 0 && dim >= 1, "EmbeddingTable: invalid shape");
  data_.assign(static_cast<std::size_t>(rows) * dim, 0.0f);
}

EmbeddingTable EmbeddingTable::random(int rows, int dim, datagen::Rng& rng) {
  EmbeddingTable t(rows, dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.normal(0.0, scale));
  }
  return t;
}

float EmbeddingTable::at(int row, int d) const {
  return data_[static_cast<std::size_t>(row) * dim_ + d];
}

float& EmbeddingTable::at(int row, int d) {
  return data_[static_cast<std::size_t>(row) * dim_ + d];
}

std::span<const float> EmbeddingTable::row(int r) const {
  return {data_.data() + static_cast<std::size_t>(r) * dim_,
          static_cast<std::size_t>(dim_)};
}

DataSize EmbeddingTable::size_bytes() const {
  return bytes(static_cast<double>(data_.size()) * sizeof(float));
}

const char* to_string(NumericFormat format) {
  switch (format) {
    case NumericFormat::kFp32:
      return "fp32";
    case NumericFormat::kFp16:
      return "fp16";
    case NumericFormat::kBf16:
      return "bf16";
    case NumericFormat::kInt8RowWise:
      return "int8-rowwise";
  }
  return "unknown";
}

std::size_t bytes_per_element(NumericFormat format) {
  switch (format) {
    case NumericFormat::kFp32:
      return 4;
    case NumericFormat::kFp16:
    case NumericFormat::kBf16:
      return 2;
    case NumericFormat::kInt8RowWise:
      return 1;
  }
  return 4;
}

QuantizedTable quantize(const EmbeddingTable& table, NumericFormat format) {
  QuantizedTable q;
  q.format_ = format;
  q.rows_ = table.rows();
  q.dim_ = table.dim();
  const std::size_t n =
      static_cast<std::size_t>(table.rows()) * static_cast<std::size_t>(table.dim());
  switch (format) {
    case NumericFormat::kFp32: {
      q.fp32_.reserve(n);
      for (int r = 0; r < table.rows(); ++r) {
        for (int d = 0; d < table.dim(); ++d) {
          q.fp32_.push_back(table.at(r, d));
        }
      }
      break;
    }
    case NumericFormat::kFp16: {
      q.half_.reserve(n);
      for (int r = 0; r < table.rows(); ++r) {
        for (int d = 0; d < table.dim(); ++d) {
          q.half_.push_back(float_to_half(table.at(r, d)));
        }
      }
      break;
    }
    case NumericFormat::kBf16: {
      q.half_.reserve(n);
      for (int r = 0; r < table.rows(); ++r) {
        for (int d = 0; d < table.dim(); ++d) {
          q.half_.push_back(float_to_bfloat16(table.at(r, d)));
        }
      }
      break;
    }
    case NumericFormat::kInt8RowWise: {
      q.int8_.reserve(n);
      q.row_scale_.reserve(static_cast<std::size_t>(table.rows()));
      for (int r = 0; r < table.rows(); ++r) {
        float max_abs = 0.0f;
        for (float v : table.row(r)) {
          max_abs = std::max(max_abs, std::fabs(v));
        }
        const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
        q.row_scale_.push_back(scale);
        for (float v : table.row(r)) {
          const long ql = std::lround(v / scale);
          q.int8_.push_back(static_cast<std::int8_t>(std::clamp(ql, -127L, 127L)));
        }
      }
      break;
    }
  }
  return q;
}

float QuantizedTable::dequantize(int row, int d) const {
  const std::size_t idx = static_cast<std::size_t>(row) * dim_ + d;
  switch (format_) {
    case NumericFormat::kFp32:
      return fp32_[idx];
    case NumericFormat::kFp16:
      return half_to_float(half_[idx]);
    case NumericFormat::kBf16:
      return bfloat16_to_float(half_[idx]);
    case NumericFormat::kInt8RowWise:
      return static_cast<float>(int8_[idx]) * row_scale_[static_cast<std::size_t>(row)];
  }
  return 0.0f;
}

DataSize QuantizedTable::size_bytes() const {
  const double payload = static_cast<double>(rows_) * dim_ *
                         static_cast<double>(bytes_per_element(format_));
  const double scales = format_ == NumericFormat::kInt8RowWise
                            ? static_cast<double>(rows_) * sizeof(float)
                            : 0.0;
  return bytes(payload + scales);
}

QuantizationError measure_error(const EmbeddingTable& original,
                                const QuantizedTable& quantized) {
  check_arg(original.rows() == quantized.rows() && original.dim() == quantized.dim(),
            "measure_error: shape mismatch");
  QuantizationError err;
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  const double n = static_cast<double>(original.rows()) * original.dim();
  for (int r = 0; r < original.rows(); ++r) {
    for (int d = 0; d < original.dim(); ++d) {
      const double e = std::fabs(static_cast<double>(original.at(r, d)) -
                                 quantized.dequantize(r, d));
      err.max_abs = std::max(err.max_abs, e);
      sum_abs += e;
      sum_sq += e * e;
    }
  }
  if (n > 0) {
    err.mean_abs = sum_abs / n;
    err.rms = std::sqrt(sum_sq / n);
  }
  return err;
}

double RmQuantizationPlan::size_reduction() const {
  check_arg(quantized_size_fraction >= 0.0 && quantized_size_fraction <= 1.0,
            "RmQuantizationPlan: quantized_size_fraction must be in [0, 1]");
  const double per_byte_saving =
      1.0 - static_cast<double>(bytes_per_element(format)) /
                static_cast<double>(bytes_per_element(NumericFormat::kFp32));
  return quantized_size_fraction * per_byte_saving;
}

double RmQuantizationPlan::bandwidth_reduction() const {
  check_arg(quantized_access_fraction >= 0.0 && quantized_access_fraction <= 1.0,
            "RmQuantizationPlan: quantized_access_fraction must be in [0, 1]");
  const double per_byte_saving =
      1.0 - static_cast<double>(bytes_per_element(format)) /
                static_cast<double>(bytes_per_element(NumericFormat::kFp32));
  return quantized_access_fraction * per_byte_saving;
}

Duration InferenceLatencyModel::latency(DataSize working_set,
                                        double bytes_scale) const {
  check_arg(bytes_scale > 0.0, "InferenceLatencyModel: bytes_scale must be > 0");
  const Bandwidth bw = to_bytes(working_set) <= to_bytes(onchip_capacity)
                           ? onchip_bandwidth
                           : offchip_bandwidth;
  const DataSize traffic = bytes_per_inference * bytes_scale;
  return compute_time + traffic / bw;
}

}  // namespace sustainai::optim
