// Cross-stack optimization cascades (Section III-B, Figure 7).
//
// "Platform-level caching, GPU acceleration, low precision format on
// accelerator, and model optimization ... in aggregate reduce the
// infrastructure resources required to serve LM at scale by over 800x."
// Gains compose multiplicatively; the cascade tracks energy after each step.
#pragma once

#include <string>
#include <vector>

#include "core/units.h"

namespace sustainai::optim {

struct OptimizationStep {
  std::string name;
  // Energy-efficiency gain factor (> 1 means less energy per unit work).
  double gain = 1.0;
  std::string mechanism;
};

class OptimizationCascade {
 public:
  OptimizationCascade() = default;

  void add_step(OptimizationStep step);

  [[nodiscard]] const std::vector<OptimizationStep>& steps() const { return steps_; }

  // Product of all step gains.
  [[nodiscard]] double cumulative_gain() const;

  // Cumulative gain after each step (same length as steps()).
  [[nodiscard]] std::vector<double> cumulative_gains() const;

  // Energy required after each step for work whose unoptimized cost is
  // `baseline` (element 0 is after the first step).
  [[nodiscard]] std::vector<Energy> energy_after_each_step(Energy baseline) const;

 private:
  std::vector<OptimizationStep> steps_;
};

// Platform-level embedding cache: precomputed embeddings served from
// DRAM/flash. The effective energy gain follows from the hit rate and the
// relative cost of a cache hit versus full recomputation:
//   gain = 1 / (hit_rate * hit_cost + (1 - hit_rate) * 1).
struct CacheModel {
  double hit_rate = 0.9;
  // Energy of serving a cached embedding relative to recomputing it.
  double hit_cost_fraction = 0.05;

  [[nodiscard]] double energy_gain() const;
  // Hit rate needed to reach `target_gain` at this hit cost; throws if the
  // target is unreachable (i.e. > 1/hit_cost_fraction).
  [[nodiscard]] static double hit_rate_for_gain(double target_gain,
                                                double hit_cost_fraction);
};

// The paper's LM serving cascade: caching 6.7x, GPU acceleration 10.1x,
// half precision 2.4x, fused Transformer kernels 5x (= 812x total).
[[nodiscard]] OptimizationCascade lm_serving_cascade();

}  // namespace sustainai::optim
