#include "optim/multitenancy.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"

namespace sustainai::optim {
namespace {

void validate_tenants(const std::vector<TenantWorkload>& tenants,
                      const hw::DeviceSpec& device) {
  check_arg(!tenants.empty(), "placement: need at least one tenant");
  for (const TenantWorkload& t : tenants) {
    check_arg(t.compute_demand > 0.0 && t.compute_demand <= 1.0,
              "placement: compute demand must be in (0, 1]");
    check_arg(to_bytes(t.memory) <= to_bytes(device.memory),
              "placement: tenant '" + t.name + "' does not fit device memory");
  }
}

}  // namespace

PlacementResult dedicated_placement(const std::vector<TenantWorkload>& tenants,
                                    const hw::DeviceSpec& device) {
  validate_tenants(tenants, device);
  PlacementResult r;
  r.devices_used = static_cast<int>(tenants.size());
  double demand = 0.0;
  for (const TenantWorkload& t : tenants) {
    demand += t.compute_demand;
  }
  r.mean_device_utilization = demand / static_cast<double>(tenants.size());
  r.throughput_efficiency = 1.0;  // no interference when isolated
  r.tenants_per_device.assign(tenants.size(), 1);
  return r;
}

PlacementResult consolidated_placement(const std::vector<TenantWorkload>& tenants,
                                       const hw::DeviceSpec& device,
                                       const MultiTenancyConfig& config) {
  validate_tenants(tenants, device);
  check_arg(config.compute_headroom > 0.0 && config.compute_headroom <= 1.0,
            "consolidated_placement: headroom must be in (0, 1]");
  check_arg(config.interference_penalty >= 0.0,
            "consolidated_placement: penalty must be >= 0");

  // First-fit-decreasing by compute demand.
  std::vector<std::size_t> order(tenants.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tenants[a].compute_demand > tenants[b].compute_demand;
  });

  struct Bin {
    double compute = 0.0;
    double memory_bytes = 0.0;
    int tenants = 0;
  };
  std::vector<Bin> bins;
  for (std::size_t idx : order) {
    const TenantWorkload& t = tenants[idx];
    bool placed = false;
    for (Bin& bin : bins) {
      if (bin.compute + t.compute_demand <= config.compute_headroom &&
          bin.memory_bytes + to_bytes(t.memory) <= to_bytes(device.memory)) {
        bin.compute += t.compute_demand;
        bin.memory_bytes += to_bytes(t.memory);
        ++bin.tenants;
        placed = true;
        break;
      }
    }
    if (!placed) {
      bins.push_back(Bin{t.compute_demand, to_bytes(t.memory), 1});
    }
  }

  PlacementResult r;
  r.devices_used = static_cast<int>(bins.size());
  double demand = 0.0;
  for (const TenantWorkload& t : tenants) {
    demand += t.compute_demand;
  }
  r.mean_device_utilization = demand / static_cast<double>(bins.size());

  // Tenant-weighted throughput efficiency under interference.
  double weighted = 0.0;
  int total_tenants = 0;
  for (const Bin& bin : bins) {
    const double eff =
        1.0 / (1.0 + config.interference_penalty * (bin.tenants - 1));
    weighted += eff * bin.tenants;
    total_tenants += bin.tenants;
    r.tenants_per_device.push_back(bin.tenants);
  }
  r.throughput_efficiency = weighted / total_tenants;
  return r;
}

PlacementCarbon placement_carbon(const PlacementResult& placement,
                                 const hw::DeviceSpec& device,
                                 Duration busy_time,
                                 const MultiTenancyConfig& config,
                                 const OperationalCarbonModel& operational) {
  check_arg(placement.devices_used >= 1, "placement_carbon: empty placement");
  check_arg(to_seconds(busy_time) >= 0.0,
            "placement_carbon: busy_time must be >= 0");
  // Interference stretches the campaign.
  const Duration stretched = busy_time / placement.throughput_efficiency;
  PlacementCarbon out;
  out.energy =
      device.energy(std::min(1.0, placement.mean_device_utilization), stretched) *
      static_cast<double>(placement.devices_used);
  out.operational = operational.location_based(out.energy);
  const EmbodiedCarbonModel embodied(device.embodied, device.lifetime,
                                     config.embodied_amortization_utilization);
  out.embodied = embodied.attribute(stretched) *
                 static_cast<double>(placement.devices_used);
  return out;
}

}  // namespace sustainai::optim
