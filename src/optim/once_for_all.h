// Once-for-all supernets vs per-target NAS (Section IV-B: "when training is
// decoupled from NAS, sub-networks tailoring to specialized system hardware
// can be selected without additional training ... however, at the expense
// of increased embodied carbon footprint").
//
// Cost model: a supernet is trained once (expensive, on a larger training
// system with more embodied carbon); each deployment target then *selects*
// a subnet at near-zero training cost. Conventional practice runs NAS plus
// full training per target. The break-even point in number of targets
// quantifies when OFA pays.
#pragma once

#include "core/units.h"

namespace sustainai::optim {

struct OfaCostModel {
  // Once-for-all route.
  double supernet_training_gpu_days = 1200.0;
  double per_target_selection_gpu_days = 2.0;  // evaluation-only search
  // Extra manufacturing footprint of the larger training system the
  // supernet requires (the paper's embodied caveat).
  CarbonMass supernet_extra_embodied = kg_co2e(2000.0);

  // Conventional route, per deployment target.
  double per_target_nas_gpu_days = 150.0;
  double per_target_training_gpu_days = 40.0;
};

struct OfaComparison {
  double ofa_gpu_days = 0.0;
  double conventional_gpu_days = 0.0;
  CarbonMass ofa_carbon;           // operational + extra embodied
  CarbonMass conventional_carbon;  // operational only
  [[nodiscard]] bool ofa_wins() const {
    return to_grams_co2e(ofa_carbon) < to_grams_co2e(conventional_carbon);
  }
};

// Compares both routes over `num_targets` deployment targets, converting
// GPU-days to carbon at `carbon_per_gpu_day`.
[[nodiscard]] OfaComparison compare_ofa(const OfaCostModel& model,
                                        int num_targets,
                                        CarbonMass carbon_per_gpu_day);

// Smallest number of targets at which the OFA route emits less carbon;
// returns -1 if it never breaks even within `max_targets`.
[[nodiscard]] int ofa_breakeven_targets(const OfaCostModel& model,
                                        CarbonMass carbon_per_gpu_day,
                                        int max_targets = 1000);

}  // namespace sustainai::optim
