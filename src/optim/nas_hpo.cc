#include "optim/nas_hpo.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"

namespace sustainai::optim {

double Candidate::quality_at(double fraction) const {
  check_arg(fraction >= 0.0 && fraction <= 1.0,
            "Candidate::quality_at: fraction must be in [0, 1]");
  // Saturating curve normalized so quality_at(1) == final_quality.
  const double saturation = 1.0 - std::exp(-curve_rate);
  return final_quality * (1.0 - std::exp(-curve_rate * fraction)) / saturation;
}

double SearchOutcome::overhead_factor(double full_training_gpu_days) const {
  check_arg(full_training_gpu_days > 0.0,
            "overhead_factor: full training cost must be positive");
  return total_gpu_days / full_training_gpu_days;
}

SearchSimulator::SearchSimulator(Config config) : config_(config) {
  check_arg(config_.num_candidates >= 1, "SearchSimulator: need >= 1 candidate");
  check_arg(config_.full_training_gpu_days > 0.0,
            "SearchSimulator: full training cost must be positive");
  datagen::Rng rng(config_.seed);
  candidates_.reserve(static_cast<std::size_t>(config_.num_candidates));
  for (int i = 0; i < config_.num_candidates; ++i) {
    Candidate c;
    c.final_quality = std::clamp(
        rng.normal(config_.quality_mean, config_.quality_stddev), 0.0, 1.0);
    c.curve_rate = rng.uniform(3.0, 6.0);
    c.inference_cost = rng.lognormal(0.0, 0.5);
    candidates_.push_back(c);
  }
}

double SearchSimulator::observe(const Candidate& candidate, double fraction,
                                datagen::Rng& rng) const {
  return candidate.quality_at(fraction) +
         rng.normal(0.0, config_.observation_noise);
}

SearchOutcome SearchSimulator::run_grid() const {
  SearchOutcome out;
  double best = -1.0;
  for (const Candidate& c : candidates_) {
    out.total_gpu_days += config_.full_training_gpu_days;
    ++out.configs_fully_trained;
    best = std::max(best, c.final_quality);
  }
  out.best_quality = best;
  return out;
}

SearchOutcome SearchSimulator::run_random(int budget_trials) const {
  check_arg(budget_trials >= 1, "run_random: need >= 1 trial");
  datagen::Rng rng(config_.seed ^ 0xabcdefULL);
  // Sample without replacement via partial Fisher-Yates over indices.
  std::vector<std::size_t> idx(candidates_.size());
  std::iota(idx.begin(), idx.end(), 0);
  const int trials =
      std::min<int>(budget_trials, static_cast<int>(candidates_.size()));
  SearchOutcome out;
  double best = -1.0;
  for (int t = 0; t < trials; ++t) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(t, static_cast<std::int64_t>(idx.size()) - 1));
    std::swap(idx[static_cast<std::size_t>(t)], idx[pick]);
    const Candidate& c = candidates_[idx[static_cast<std::size_t>(t)]];
    out.total_gpu_days += config_.full_training_gpu_days;
    ++out.configs_fully_trained;
    best = std::max(best, c.final_quality);
  }
  out.best_quality = best;
  return out;
}

SearchOutcome SearchSimulator::run_successive_halving(double initial_fraction,
                                                      double keep_fraction) const {
  check_arg(initial_fraction > 0.0 && initial_fraction <= 1.0,
            "run_successive_halving: initial fraction must be in (0, 1]");
  check_arg(keep_fraction > 0.0 && keep_fraction < 1.0,
            "run_successive_halving: keep fraction must be in (0, 1)");
  datagen::Rng rng(config_.seed ^ 0x5eedULL);
  std::vector<std::size_t> alive(candidates_.size());
  std::iota(alive.begin(), alive.end(), 0);

  SearchOutcome out;
  double fraction = initial_fraction;
  double trained_to = 0.0;  // budget fraction already spent per survivor
  while (true) {
    // Train all survivors up to `fraction` (paying only the increment).
    out.total_gpu_days += (fraction - trained_to) *
                          config_.full_training_gpu_days *
                          static_cast<double>(alive.size());
    trained_to = fraction;
    if (alive.size() == 1 || fraction >= 1.0) {
      break;
    }
    // Rank by noisy observation at the current fraction; keep the top share.
    std::vector<std::pair<double, std::size_t>> scored;
    scored.reserve(alive.size());
    for (std::size_t i : alive) {
      scored.emplace_back(observe(candidates_[i], fraction, rng), i);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(scored.size() * keep_fraction)));
    alive.clear();
    for (std::size_t k = 0; k < keep; ++k) {
      alive.push_back(scored[k].second);
    }
    fraction = std::min(1.0, fraction * 2.0);
  }
  // Finish the final survivor(s) and select the best observed.
  if (trained_to < 1.0) {
    out.total_gpu_days += (1.0 - trained_to) * config_.full_training_gpu_days *
                          static_cast<double>(alive.size());
  }
  out.configs_fully_trained = static_cast<int>(alive.size());
  double best = -1.0;
  for (std::size_t i : alive) {
    best = std::max(best, candidates_[i].final_quality);
  }
  out.best_quality = best;
  return out;
}

double nas_overhead_factor(int trials, double average_fraction) {
  check_arg(trials >= 1, "nas_overhead_factor: trials must be >= 1");
  check_arg(average_fraction > 0.0 && average_fraction <= 1.0,
            "nas_overhead_factor: average fraction must be in (0, 1]");
  return static_cast<double>(trials) * average_fraction;
}

}  // namespace sustainai::optim
