#include "optim/jevons.h"

#include <cmath>

#include "core/check.h"

namespace sustainai::optim {

double OptimizationWave::combined_reduction() const {
  double remaining = 1.0;
  for (const AreaGain& a : areas) {
    check_arg(a.reduction >= 0.0 && a.reduction < 1.0,
              "OptimizationWave: per-area reduction must be in [0, 1)");
    remaining *= 1.0 - a.reduction;
  }
  return 1.0 - remaining;
}

OptimizationWave default_wave() {
  // Four areas, each ~5.4%, compounding to 1 - (1 - 0.054)^4 ~ 19.9%.
  OptimizationWave wave;
  wave.areas = {
      {"model", 0.054},           // resource-efficient model architectures
      {"platform", 0.054},        // framework support, e.g. quantization
      {"infrastructure", 0.054},  // datacenter + low-precision hardware
      {"hardware", 0.054},        // domain-specific acceleration
  };
  return wave;
}

double implied_demand_growth(double efficiency_reduction, double net_factor,
                             int periods) {
  check_arg(efficiency_reduction >= 0.0 && efficiency_reduction < 1.0,
            "implied_demand_growth: efficiency reduction must be in [0, 1)");
  check_arg(net_factor > 0.0, "implied_demand_growth: net factor must be positive");
  check_arg(periods >= 1, "implied_demand_growth: periods must be >= 1");
  const double per_period_net = std::pow(net_factor, 1.0 / periods);
  return per_period_net / (1.0 - efficiency_reduction);
}

double JevonsResult::net_fleet_change() const {
  return fleet_power.back() / fleet_power.front() - 1.0;
}

double JevonsResult::efficiency_only_change() const {
  return per_work_power.back() / per_work_power.front() - 1.0;
}

JevonsResult simulate_jevons(const OptimizationWave& wave,
                             double demand_growth_per_period, int periods) {
  check_arg(demand_growth_per_period > 0.0,
            "simulate_jevons: demand growth must be positive");
  check_arg(periods >= 1, "simulate_jevons: periods must be >= 1");
  JevonsResult result;
  double eff = 1.0;
  double demand = 1.0;
  result.per_work_power.push_back(eff);
  result.demand.push_back(demand);
  result.fleet_power.push_back(eff * demand);
  const double reduction = wave.combined_reduction();
  for (int p = 0; p < periods; ++p) {
    eff *= 1.0 - reduction;
    demand *= demand_growth_per_period;
    result.per_work_power.push_back(eff);
    result.demand.push_back(demand);
    result.fleet_power.push_back(eff * demand);
  }
  return result;
}

}  // namespace sustainai::optim
