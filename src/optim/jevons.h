// Iterative efficiency optimization vs demand growth (Figures 6, 8).
//
// "We reduce the power footprint across the machine learning hardware-
// software stack by 20% every 6 months. But at the same time, AI
// infrastructure continued to scale out. The net effect, with Jevons'
// Paradox, is a 28.5% operational power footprint reduction over two
// years."
#pragma once

#include <string>
#include <vector>

namespace sustainai::optim {

// One half-year optimization wave: per-area multiplicative gains across the
// stack (model / platform / infrastructure / hardware).
struct OptimizationWave {
  struct AreaGain {
    std::string area;
    double reduction;  // fractional power reduction from this area, in [0,1)
  };
  std::vector<AreaGain> areas;

  // Combined fractional reduction: 1 - prod(1 - r_i).
  [[nodiscard]] double combined_reduction() const;
};

// The paper's four optimization areas with per-area reductions chosen so
// each wave compounds to ~20% (Figure 6).
[[nodiscard]] OptimizationWave default_wave();

// Per-halfyear demand growth required for the fleet's net power to change
// by `net_factor` over `periods` half-years while per-work power shrinks by
// `efficiency_reduction` each period:
//   ((1 - eff) * demand)^periods = net_factor.
[[nodiscard]] double implied_demand_growth(double efficiency_reduction,
                                           double net_factor, int periods);

struct JevonsResult {
  // Index 0 is the starting point (=1.0); one entry per half-year after.
  std::vector<double> per_work_power;  // efficiency-only trajectory
  std::vector<double> demand;          // workload volume trajectory
  std::vector<double> fleet_power;     // product of the two
  [[nodiscard]] double net_fleet_change() const;       // last/first - 1
  [[nodiscard]] double efficiency_only_change() const; // last/first - 1
};

// Simulates `periods` half-years of a wave applied each period while demand
// grows by `demand_growth_per_period`.
[[nodiscard]] JevonsResult simulate_jevons(const OptimizationWave& wave,
                                           double demand_growth_per_period,
                                           int periods);

}  // namespace sustainai::optim
