// Neural-architecture-search / hyper-parameter-optimization cost simulator
// (Section IV-B).
//
// "NAS and HPO can be extremely resource-intensive ... grid-search NAS can
// incur over 3000x environmental footprint overhead. Utilizing much more
// sample-efficient NAS and HPO methods can translate directly into carbon
// footprint improvement. ... By detecting and stopping under-performing
// training workflows early, unnecessary training cycles can be eliminated."
//
// Each candidate configuration has a hidden final quality and a saturating
// learning curve; strategies observe noisy partial-training results and
// spend GPU-days accordingly. The simulator measures the quality/cost
// trade-off of grid search, random subsets, and successive halving
// (early stopping).
#pragma once

#include <cstdint>
#include <vector>

#include "datagen/rng.h"

namespace sustainai::optim {

// A candidate configuration with a hidden learning curve.
struct Candidate {
  double final_quality = 0.0;   // hidden ground truth, in [0, 1]
  double curve_rate = 4.0;      // learning-curve saturation rate
  double inference_cost = 1.0;  // per-query serving cost (for green selection)

  // Noise-free quality after training `fraction` in [0, 1] of the budget.
  [[nodiscard]] double quality_at(double fraction) const;
};

struct SearchOutcome {
  double best_quality = 0.0;        // true final quality of the selected config
  double total_gpu_days = 0.0;      // compute spent by the strategy
  int configs_fully_trained = 0;    // candidates trained to completion
  // Overhead vs training the selected configuration once.
  [[nodiscard]] double overhead_factor(double full_training_gpu_days) const;
};

class SearchSimulator {
 public:
  struct Config {
    int num_candidates = 200;
    double full_training_gpu_days = 10.0;
    double quality_mean = 0.70;
    double quality_stddev = 0.06;
    double observation_noise = 0.01;
    std::uint64_t seed = 11;
  };

  explicit SearchSimulator(Config config);

  // Exhaustive grid search: trains every candidate to completion.
  [[nodiscard]] SearchOutcome run_grid() const;

  // Random search: fully trains a random subset of `budget_trials`.
  [[nodiscard]] SearchOutcome run_random(int budget_trials) const;

  // Successive halving: trains all candidates to an initial fraction, keeps
  // the top `keep_fraction` per rung, doubling the budget each rung until
  // one candidate finishes full training.
  [[nodiscard]] SearchOutcome run_successive_halving(double initial_fraction = 0.05,
                                                     double keep_fraction = 0.4) const;

  [[nodiscard]] const std::vector<Candidate>& candidates() const { return candidates_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  [[nodiscard]] double observe(const Candidate& candidate, double fraction,
                               datagen::Rng& rng) const;

  Config config_;
  std::vector<Candidate> candidates_;
};

// Published overhead anchor: Strubell et al.'s grid-search NAS spent the
// equivalent of `trials * average_fraction` full trainings (> 3000x).
[[nodiscard]] double nas_overhead_factor(int trials, double average_fraction);

}  // namespace sustainai::optim
