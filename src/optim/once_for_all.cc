#include "optim/once_for_all.h"

#include "core/check.h"

namespace sustainai::optim {

OfaComparison compare_ofa(const OfaCostModel& model, int num_targets,
                          CarbonMass carbon_per_gpu_day) {
  check_arg(num_targets >= 1, "compare_ofa: need >= 1 target");
  check_arg(to_grams_co2e(carbon_per_gpu_day) > 0.0,
            "compare_ofa: carbon per GPU-day must be positive");
  OfaComparison out;
  out.ofa_gpu_days = model.supernet_training_gpu_days +
                     model.per_target_selection_gpu_days * num_targets;
  out.conventional_gpu_days =
      (model.per_target_nas_gpu_days + model.per_target_training_gpu_days) *
      num_targets;
  out.ofa_carbon = carbon_per_gpu_day * out.ofa_gpu_days +
                   model.supernet_extra_embodied;
  out.conventional_carbon = carbon_per_gpu_day * out.conventional_gpu_days;
  return out;
}

int ofa_breakeven_targets(const OfaCostModel& model,
                          CarbonMass carbon_per_gpu_day, int max_targets) {
  check_arg(max_targets >= 1, "ofa_breakeven_targets: max_targets must be >= 1");
  for (int n = 1; n <= max_targets; ++n) {
    if (compare_ofa(model, n, carbon_per_gpu_day).ofa_wins()) {
      return n;
    }
  }
  return -1;
}

}  // namespace sustainai::optim
