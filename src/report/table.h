// Fixed-width table formatting for figure harnesses.
//
// Every bench binary prints the rows/series the paper's figure reports; a
// shared formatter keeps the output uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace sustainai::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with %.4g.
  void add_row_values(const std::string& label, const std::vector<double>& values);

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with up-to-4 significant digits (helper for cells).
[[nodiscard]] std::string fmt(double value);
// Formats as a percentage with one decimal, e.g. "28.5%".
[[nodiscard]] std::string fmt_percent(double fraction);
// Formats a multiplicative factor, e.g. "812x".
[[nodiscard]] std::string fmt_factor(double factor);

}  // namespace sustainai::report
