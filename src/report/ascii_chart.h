// Minimal ASCII bar charts so figure harnesses can show shapes inline.
#pragma once

#include <string>
#include <vector>

namespace sustainai::report {

// Horizontal bar chart; bar lengths scale to `width` at the max value.
// Values must be non-negative.
[[nodiscard]] std::string bar_chart(const std::vector<std::string>& labels,
                                    const std::vector<double>& values,
                                    int width = 50);

// Sparkline-style line for a series using block characters.
[[nodiscard]] std::string sparkline(const std::vector<double>& values);

}  // namespace sustainai::report
