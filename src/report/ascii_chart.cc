#include "report/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/check.h"

namespace sustainai::report {

std::string bar_chart(const std::vector<std::string>& labels,
                      const std::vector<double>& values, int width) {
  check_arg(labels.size() == values.size(), "bar_chart: size mismatch");
  check_arg(width >= 1, "bar_chart: width must be >= 1");
  double max_v = 0.0;
  std::size_t label_w = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    check_arg(values[i] >= 0.0, "bar_chart: values must be non-negative");
    max_v = std::max(max_v, values[i]);
    label_w = std::max(label_w, labels[i].size());
  }
  std::ostringstream out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const int n = max_v == 0.0
                      ? 0
                      : static_cast<int>(std::lround(values[i] / max_v * width));
    out << labels[i] << std::string(label_w - labels[i].size(), ' ') << " | "
        << std::string(static_cast<std::size_t>(n), '#') << " "
        << values[i] << "\n";
  }
  return out.str();
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  constexpr int kNumLevels = 8;
  if (values.empty()) {
    return "";
  }
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  std::ostringstream out;
  for (double v : values) {
    int level = hi == lo ? 0
                         : static_cast<int>((v - lo) / (hi - lo) * (kNumLevels - 1));
    level = std::clamp(level, 0, kNumLevels - 1);
    out << kLevels[level];
  }
  return out.str();
}

}  // namespace sustainai::report
