#include "report/json.h"

#include <cmath>
#include <cstdio>

#include "core/check.h"

namespace sustainai::report {

JsonWriter::JsonWriter() = default;

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      out_ += ',';
    }
    needs_comma_.back() = true;
  }
}

void JsonWriter::write_string(const std::string& s) {
  out_ += '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out_ += buf;
        } else {
          out_ += ch;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_object(const std::string& key) {
  comma();
  write_string(key);
  out_ += ":{";
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  check_arg(!needs_comma_.empty(), "JsonWriter: unbalanced end_object");
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(const std::string& key) {
  comma();
  write_string(key);
  out_ += ":[";
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  check_arg(!needs_comma_.empty(), "JsonWriter: unbalanced end_array");
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, const std::string& value) {
  comma();
  write_string(key);
  out_ += ':';
  write_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, const char* value) {
  return field(key, std::string(value));
}

JsonWriter& JsonWriter::field(const std::string& key, double value) {
  comma();
  write_string(key);
  char buf[64];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), ":%.10g", value);
  } else {
    std::snprintf(buf, sizeof(buf), ":null");
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, long value) {
  comma();
  write_string(key);
  out_ += ':' + std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, bool value) {
  comma();
  write_string(key);
  out_ += value ? ":true" : ":false";
  return *this;
}

JsonWriter& JsonWriter::element(double value) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::element(const std::string& value) {
  comma();
  write_string(value);
  return *this;
}

std::string JsonWriter::str() const {
  check_arg(needs_comma_.empty(), "JsonWriter: unclosed containers");
  return out_;
}

}  // namespace sustainai::report
