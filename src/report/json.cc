#include "report/json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "core/check.h"

namespace sustainai::report {

// --- JsonValue -----------------------------------------------------------

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const char* JsonValue::kind_name() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return "bool";
    case Kind::kNumber:
      return "number";
    case Kind::kString:
      return "string";
    case Kind::kArray:
      return "array";
    case Kind::kObject:
      return "object";
  }
  return "?";
}

namespace {

// The dynamic message is built only on the throwing path. The accessors sit
// on the Spec/canonical_json hot paths (hundreds of thousands of calls per
// scenario run), where an eagerly concatenated std::string argument costs an
// allocation per call even when the check passes.
[[noreturn]] void wrong_kind(const char* kind, const char* what) {
  throw std::invalid_argument(std::string("JsonValue: ") + kind + what);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) {
    wrong_kind(kind_name(), " is not a bool");
  }
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) {
    wrong_kind(kind_name(), " is not a number");
  }
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) {
    wrong_kind(kind_name(), " is not a string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (!is_array()) {
    wrong_kind(kind_name(), " is not an array");
  }
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (!is_object()) {
    wrong_kind(kind_name(), " is not an object");
  }
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const Member& m : members()) {
    if (m.first == key) {
      return &m.second;
    }
  }
  return nullptr;
}

JsonValue* JsonValue::find(const std::string& key) {
  return const_cast<JsonValue*>(std::as_const(*this).find(key));
}

JsonValue& JsonValue::append(JsonValue element) {
  if (!is_array()) {
    throw std::invalid_argument(std::string("JsonValue: cannot append to ") +
                                kind_name());
  }
  items_.push_back(std::move(element));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (!is_object()) {
    throw std::invalid_argument(std::string("JsonValue: cannot set key on ") +
                                kind_name());
  }
  for (Member& m : members_) {
    if (m.first == key) {
      m.second = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

// --- Parser --------------------------------------------------------------

JsonParseError::JsonParseError(int line, int column, const std::string& what)
    : std::runtime_error("JSON parse error at line " + std::to_string(line) +
                         ", column " + std::to_string(column) + ": " + what),
      line_(line),
      column_(column) {}

namespace {

// Strict recursive-descent parser over the RFC 8259 grammar. Tracks the
// 1-based line/column of every consumed byte for error reporting.
class JsonParser {
 public:
  JsonParser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue parse_document() {
    skip_whitespace();
    JsonValue v = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("unexpected content after the document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(line_, column_, what);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    return eof() ? '\0' : text_[pos_];
  }

  char advance() {
    if (eof()) {
      fail("unexpected end of input");
    }
    const char ch = text_[pos_++];
    if (ch == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return ch;
  }

  void expect(char wanted, const char* context) {
    if (peek() != wanted) {
      fail(std::string("expected '") + wanted + "' " + context +
           (eof() ? " but reached end of input"
                  : std::string(" but found '") + peek() + "'"));
    }
    advance();
  }

  void skip_whitespace() {
    while (!eof()) {
      const char ch = peek();
      if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') {
        advance();
      } else {
        return;
      }
    }
  }

  void expect_keyword(const char* keyword) {
    for (const char* p = keyword; *p != '\0'; ++p) {
      if (eof() || peek() != *p) {
        fail(std::string("invalid literal (expected '") + keyword + "')");
      }
      advance();
    }
  }

  JsonValue parse_value(int depth) {
    if (depth > max_depth_) {
      fail("nesting deeper than " + std::to_string(max_depth_) + " levels");
    }
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue::string(parse_string());
      case 't':
        expect_keyword("true");
        return JsonValue::boolean(true);
      case 'f':
        expect_keyword("false");
        return JsonValue::boolean(false);
      case 'n':
        expect_keyword("null");
        return JsonValue::null();
      default:
        if (peek() == '-' || (peek() >= '0' && peek() <= '9')) {
          return JsonValue::number(parse_number());
        }
        if (eof()) {
          fail("unexpected end of input (expected a value)");
        }
        fail(std::string("unexpected character '") + peek() + "'");
    }
  }

  JsonValue parse_object(int depth) {
    expect('{', "to open an object");
    JsonValue obj = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      advance();
      return obj;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') {
        fail(eof() ? "unterminated object"
                   : "expected a quoted object key");
      }
      std::string key = parse_string();
      skip_whitespace();
      expect(':', "after object key");
      skip_whitespace();
      if (obj.find(key) != nullptr) {
        fail("duplicate object key \"" + key + "\"");
      }
      obj.set(key, parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        advance();
        skip_whitespace();
        if (peek() == '}') {
          fail("trailing comma before '}'");
        }
        continue;
      }
      expect('}', "to close the object");
      return obj;
    }
  }

  JsonValue parse_array(int depth) {
    expect('[', "to open an array");
    JsonValue arr = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      advance();
      return arr;
    }
    while (true) {
      skip_whitespace();
      arr.append(parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        advance();
        skip_whitespace();
        if (peek() == ']') {
          fail("trailing comma before ']'");
        }
        continue;
      }
      expect(']', "to close the array");
      return arr;
    }
  }

  // Consumes the 4 hex digits of a \u escape.
  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) {
        fail("unterminated \\u escape");
      }
      const char ch = advance();
      code <<= 4;
      if (ch >= '0' && ch <= '9') {
        code |= static_cast<unsigned>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        code |= static_cast<unsigned>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        code |= static_cast<unsigned>(ch - 'A' + 10);
      } else {
        fail(std::string("invalid hex digit '") + ch + "' in \\u escape");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"', "to open a string");
    std::string out;
    while (true) {
      if (eof()) {
        fail("unterminated string");
      }
      const char ch = advance();
      if (ch == '"') {
        return out;
      }
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("raw control character in string (use \\u escapes)");
      }
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (eof()) {
        fail("unterminated escape sequence");
      }
      const char esc = advance();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (peek() != '\\') {
              fail("unpaired high surrogate in \\u escape");
            }
            advance();
            if (peek() != 'u') {
              fail("unpaired high surrogate in \\u escape");
            }
            advance();
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid low surrogate in \\u escape pair");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail(std::string("invalid escape sequence '\\") + esc + "'");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      advance();
    }
    // Integer part: a single 0, or [1-9][0-9]*.
    if (peek() == '0') {
      advance();
      if (peek() >= '0' && peek() <= '9') {
        fail("numbers may not have leading zeros");
      }
    } else if (peek() >= '1' && peek() <= '9') {
      while (peek() >= '0' && peek() <= '9') {
        advance();
      }
    } else {
      fail("invalid number (expected a digit)");
    }
    if (peek() == '.') {
      advance();
      if (!(peek() >= '0' && peek() <= '9')) {
        fail("invalid number (expected a digit after '.')");
      }
      while (peek() >= '0' && peek() <= '9') {
        advance();
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      advance();
      if (peek() == '+' || peek() == '-') {
        advance();
      }
      if (!(peek() >= '0' && peek() <= '9')) {
        fail("invalid number (expected an exponent digit)");
      }
      while (peek() >= '0' && peek() <= '9') {
        advance();
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) {
      fail("number '" + token + "' overflows a double");
    }
    return value;
  }

  std::string_view text_;
  int max_depth_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

// Appends 2*indent spaces without materializing a pad string; leaf nodes
// (the vast majority) never pay for indentation at all.
void append_indent(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

void canonical_render(const JsonValue& value, int indent, std::string& out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      out += shortest_double(value.as_number());
      return;
    case JsonValue::Kind::kString:
      quote_json_string_to(out, value.as_string());
      return;
    case JsonValue::Kind::kArray: {
      if (value.items().empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) {
          out += ",\n";
        }
        first = false;
        append_indent(out, indent + 1);
        canonical_render(item, indent + 1, out);
      }
      out += '\n';
      append_indent(out, indent);
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      if (value.members().empty()) {
        out += "{}";
        return;
      }
      std::vector<const JsonValue::Member*> sorted;
      sorted.reserve(value.members().size());
      for (const JsonValue::Member& m : value.members()) {
        sorted.push_back(&m);
      }
      std::sort(sorted.begin(), sorted.end(),
                [](const JsonValue::Member* a, const JsonValue::Member* b) {
                  return a->first < b->first;
                });
      out += "{\n";
      bool first = true;
      for (const JsonValue::Member* m : sorted) {
        if (!first) {
          out += ",\n";
        }
        first = false;
        append_indent(out, indent + 1);
        quote_json_string_to(out, m->first);
        out += ": ";
        canonical_render(m->second, indent + 1, out);
      }
      out += '\n';
      append_indent(out, indent);
      out += '}';
      return;
    }
  }
}

}  // namespace

JsonValue parse_json(std::string_view text, int max_depth) {
  return JsonParser(text, max_depth).parse_document();
}

std::string shortest_double(double value) {
  check_arg(std::isfinite(value), "shortest_double: value must be finite");
  // Integral doubles inside the exactly-representable range print as plain
  // integers (canonical specs should read naturally).
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  // Shortest precision that round-trips the exact bits.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  return buf;
}

std::string canonical_json(const JsonValue& value) {
  std::string out;
  canonical_render(value, 0, out);
  out += '\n';
  return out;
}

JsonWriter::JsonWriter() = default;

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      out_ += ',';
    }
    needs_comma_.back() = true;
  }
}

void JsonWriter::write_string(const std::string& s) {
  quote_json_string_to(out_, s);
}

std::string quote_json_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  quote_json_string_to(out, s);
  return out;
}

void quote_json_string_to(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_object(const std::string& key) {
  comma();
  write_string(key);
  out_ += ":{";
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  check_arg(!needs_comma_.empty(), "JsonWriter: unbalanced end_object");
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(const std::string& key) {
  comma();
  write_string(key);
  out_ += ":[";
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  check_arg(!needs_comma_.empty(), "JsonWriter: unbalanced end_array");
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, const std::string& value) {
  comma();
  write_string(key);
  out_ += ':';
  write_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, const char* value) {
  return field(key, std::string(value));
}

JsonWriter& JsonWriter::field(const std::string& key, double value) {
  comma();
  write_string(key);
  char buf[64];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), ":%.10g", value);
  } else {
    std::snprintf(buf, sizeof(buf), ":null");
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, long value) {
  comma();
  write_string(key);
  out_ += ':' + std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, bool value) {
  comma();
  write_string(key);
  out_ += value ? ":true" : ":false";
  return *this;
}

JsonWriter& JsonWriter::element(double value) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::element(const std::string& value) {
  comma();
  write_string(value);
  return *this;
}

std::string JsonWriter::str() const {
  check_arg(needs_comma_.empty(), "JsonWriter: unclosed containers");
  return out_;
}

}  // namespace sustainai::report
