// JSON support for machine-readable carbon reports (Section V-A's
// "easy-to-adopt telemetry" needs outputs dashboards can ingest).
//
// Two halves:
//   * JsonWriter — streaming write-only builder: values are appended in
//     document order; nesting via begin_object/begin_array.
//   * JsonValue + parse_json — a DOM with a strict recursive-descent parser
//     (RFC 8259 grammar: no trailing commas, no comments, no loose numbers)
//     reporting precise line/column positions on error, plus a canonical
//     serializer (sorted object keys, shortest round-trip numbers) so a
//     parsed document re-emits byte-identically — the contract the scenario
//     engine's spec.json artifacts rely on (src/scenario/).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sustainai::report {

// --- DOM -----------------------------------------------------------------

// One JSON value. Object members keep insertion order for inspection;
// canonical serialization sorts them by key. Numbers are IEEE doubles (the
// only number type JSON interoperably supports).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double value);
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const char* kind_name() const;
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; throw std::invalid_argument on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;   // arrays
  [[nodiscard]] const std::vector<Member>& members() const;    // objects

  // Object lookup; nullptr when the key is absent (objects only). The
  // mutable overload lets owners move large subtrees in and back out
  // (scenario::Runner envelopes a report without deep-copying it).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] JsonValue* find(const std::string& key);

  // Builders (arrays/objects only; throw on kind mismatch). `set` replaces
  // an existing member with the same key in place.
  JsonValue& append(JsonValue element);
  JsonValue& set(const std::string& key, JsonValue value);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

// Parse failure with the exact 1-based document position of the offense.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(int line, int column, const std::string& what);
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

 private:
  int line_;
  int column_;
};

// Parses exactly one JSON document (any value type at the root); trailing
// non-whitespace is an error. Containers deeper than `max_depth` are
// rejected so hostile inputs cannot overflow the stack.
[[nodiscard]] JsonValue parse_json(std::string_view text, int max_depth = 64);

// Canonical serialization: object keys sorted (byte order), 2-space
// indentation, "\n" separators, numbers in shortest form that round-trips
// the exact double. parse_json(canonical_json(v)) reproduces v, and
// canonical_json is a pure function of the value — the basis of the
// scenario engine's byte-identical artifact contract.
[[nodiscard]] std::string canonical_json(const JsonValue& value);

// Shortest decimal form of `value` that parses back to the same double
// (integral doubles render without exponent or decimal point). Shared by
// canonical_json and anything needing value-faithful number text.
[[nodiscard]] std::string shortest_double(double value);

// `s` as a quoted, escaped JSON string literal (the writer's escaping).
[[nodiscard]] std::string quote_json_string(const std::string& s);

// Appends the quoted form of `s` to `out` without a temporary — the
// serialization hot path (canonical_json, JsonWriter) quotes thousands of
// strings per report.
void quote_json_string_to(std::string& out, const std::string& s);

class JsonWriter {
 public:
  JsonWriter();

  // Object/array structure. `key` variants are for use inside objects,
  // keyless variants inside arrays (or for the root).
  JsonWriter& begin_object();
  JsonWriter& begin_object(const std::string& key);
  JsonWriter& end_object();
  JsonWriter& begin_array(const std::string& key);
  JsonWriter& end_array();

  JsonWriter& field(const std::string& key, const std::string& value);
  JsonWriter& field(const std::string& key, const char* value);
  JsonWriter& field(const std::string& key, double value);
  JsonWriter& field(const std::string& key, long value);
  JsonWriter& field(const std::string& key, bool value);
  JsonWriter& element(double value);
  JsonWriter& element(const std::string& value);

  // Finishes the document; throws if containers are still open.
  [[nodiscard]] std::string str() const;

 private:
  void comma();
  void write_string(const std::string& s);

  std::string out_;
  std::vector<bool> needs_comma_;  // one entry per open container
};

}  // namespace sustainai::report
