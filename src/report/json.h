// Minimal JSON emission for machine-readable carbon reports (Section V-A's
// "easy-to-adopt telemetry" needs outputs dashboards can ingest).
//
// Write-only builder: values are appended in document order; nesting via
// begin_object/begin_array. No parsing, no DOM — just correct escaping and
// well-formed output, verified by tests.
#pragma once

#include <string>
#include <vector>

namespace sustainai::report {

class JsonWriter {
 public:
  JsonWriter();

  // Object/array structure. `key` variants are for use inside objects,
  // keyless variants inside arrays (or for the root).
  JsonWriter& begin_object();
  JsonWriter& begin_object(const std::string& key);
  JsonWriter& end_object();
  JsonWriter& begin_array(const std::string& key);
  JsonWriter& end_array();

  JsonWriter& field(const std::string& key, const std::string& value);
  JsonWriter& field(const std::string& key, const char* value);
  JsonWriter& field(const std::string& key, double value);
  JsonWriter& field(const std::string& key, long value);
  JsonWriter& field(const std::string& key, bool value);
  JsonWriter& element(double value);
  JsonWriter& element(const std::string& value);

  // Finishes the document; throws if containers are still open.
  [[nodiscard]] std::string str() const;

 private:
  void comma();
  void write_string(const std::string& s);

  std::string out_;
  std::vector<bool> needs_comma_;  // one entry per open container
};

}  // namespace sustainai::report
