// CSV emission for downstream plotting of figure series.
#pragma once

#include <string>
#include <vector>

namespace sustainai::report {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);
  void add_row_values(const std::vector<double>& values);

  [[nodiscard]] std::string to_string() const;

  // Writes to `path`; returns false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sustainai::report
