#include "report/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/check.h"

namespace sustainai::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  check_arg(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  check_arg(cells.size() == headers_.size(), "Table::add_row: arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::string& label,
                           const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    cells.push_back(fmt(v));
  }
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", value);
  return buf;
}

std::string fmt_percent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string fmt_factor(double factor) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3gx", factor);
  return buf;
}

}  // namespace sustainai::report
