#include "report/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/check.h"

namespace sustainai::report {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  check_arg(!headers_.empty(), "CsvWriter: need at least one column");
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  check_arg(cells.size() == headers_.size(), "CsvWriter::add_row: arity mismatch");
  rows_.push_back(cells);
}

void CsvWriter::add_row_values(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    cells.emplace_back(buf);
  }
  add_row(cells);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c ? "," : "") << escape(headers_[c]);
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << escape(row[c]);
    }
    out << "\n";
  }
  return out.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  f << to_string();
  return static_cast<bool>(f);
}

}  // namespace sustainai::report
