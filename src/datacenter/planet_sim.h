// Planetary-scale sharded fleet simulation.
//
// A planet is N region-fleets stepped over one shared horizon: each region
// has its own cluster mix, grid, PUE, CFE coverage, fault spec, and a UTC
// offset that phase-shifts both its diurnal demand and its position in the
// grid's intensity series. Regions are independent by construction, so the
// planet shards them over src/exec/ with exactly one region per exec chunk
// (chunk_size = 1): every region is one deterministic obs track, and the
// cross-region merge is a serial left-to-right fold in region order —
// byte-identical at any SUSTAINAI_THREADS (tests/planet_sim_test.cc).
//
// Two things keep a 40-region decade cheap:
//   * IntensityTables are memoized across shards through an IntensityCache
//     keyed by exact grid parameters (core/intensity_cache.h): 40 regions
//     on 6 distinct grids build 6 tables, not 40. A region reads the shared
//     table through `raw() + offset_steps` — zero copies, and same-grid
//     regions at different offsets are views into one lane.
//   * Runs advance in checkpointable segments. A Checkpoint is the exact
//     accumulator state (per-region FleetPartial buffers + the series so
//     far + the next step index, always on a chunk boundary), and it round-
//     trips through canonical JSON losslessly (shortest_double), so a run
//     killed mid-flight resumes — even in a fresh process — to the same
//     bytes as an uninterrupted run. Segment boundaries round up to chunk
//     boundaries, so the per-region chunk fold never depends on where a
//     run was cut (DESIGN.md, "Planetary merge & checkpoint contract").
//
// Alongside the per-region/global totals, the planet keeps a carbon-
// weighted time series with one sample per chunk window (facility energy,
// location carbon, and their ratio), merged across regions in region order.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/carbon_intensity.h"
#include "core/intensity_cache.h"
#include "core/units.h"
#include "datacenter/autoscaler.h"
#include "datacenter/cluster.h"
#include "datacenter/fleet_kernels.h"
#include "datacenter/fleet_sim.h"
#include "engine/sharded_run.h"
#include "exec/thread_pool.h"
#include "fault/recovery.h"
#include "report/json.h"

namespace sustainai::datacenter {

class PlanetSimulator {
 public:
  struct RegionConfig {
    std::string name;
    Cluster cluster;
    IntermittentGrid::Config grid;
    double pue = 1.10;
    double cfe_coverage = 0.0;
    // Local solar time leads UTC by this many hours, in [0, 24). Must be a
    // whole number of steps: it shifts the diurnal peak hour of every group
    // and the region's read offset into the shared intensity table.
    double utc_offset_hours = 0.0;
    fault::FaultSpec faults;
  };

  struct Config {
    std::vector<RegionConfig> regions;
    Duration step = minutes(15.0);
    Duration horizon = days(365.0);
    bool enable_autoscaler = true;
    AutoScaler::Config autoscaler;
    bool opportunistic_training = true;
    double opportunistic_utilization = 0.90;
    exec::ThreadPool* pool = nullptr;
    // Steps per fleet chunk; also the stride of one series window and the
    // granule checkpoint boundaries round to. Rounded up to a kStepLanes
    // multiple at construction so chunk interiors match FleetSimulator's.
    long steps_per_chunk = 1024;
    StepKernel kernel = StepKernel::kSimd;
    // Shared table memo; nullptr builds a cache owned by this simulator.
    IntensityCache* intensity_cache = nullptr;
  };

  struct RegionResult {
    std::string name;
    Energy it_energy;
    Energy facility_energy;
    CarbonMass location_carbon;
    CarbonMass market_carbon;
    double opportunistic_server_hours = 0.0;
    Energy opportunistic_energy;
    std::array<Energy, kNumTiers> tier_it_energy{};
    FleetSimulator::FaultStats faults;
  };

  // One chunk-window sample of the planetary carbon-weighted series.
  struct SeriesSample {
    double t_begin_s = 0.0;
    double t_end_s = 0.0;
    double facility_energy_j = 0.0;
    double location_carbon_g = 0.0;
    [[nodiscard]] double intensity_g_per_j() const {
      return facility_energy_j > 0.0 ? location_carbon_g / facility_energy_j
                                     : 0.0;
    }
  };

  struct Result {
    std::vector<RegionResult> regions;
    Energy it_energy;
    Energy facility_energy;
    CarbonMass location_carbon;
    CarbonMass market_carbon;
    double opportunistic_server_hours = 0.0;
    Energy opportunistic_energy;
    std::array<Energy, kNumTiers> tier_it_energy{};
    std::vector<SeriesSample> series;
  };

  // Resumable run state: the exact accumulators after simulating steps
  // [0, next_step), with next_step always on a chunk boundary (or the
  // horizon end). Serializes losslessly via checkpoint_json/parse_checkpoint.
  struct Checkpoint {
    long next_step = 0;
    std::vector<FleetPartial> region_partials;  // one per region
    std::vector<SeriesSample> series;
  };

  // Validates the config and builds all steady-run state: per-region
  // shifted clusters, fault plans/projections, SoA images, and the shared
  // intensity tables (prebuilt through horizon + offset, then read-only).
  explicit PlanetSimulator(Config config);

  PlanetSimulator(const PlanetSimulator&) = delete;
  PlanetSimulator& operator=(const PlanetSimulator&) = delete;

  [[nodiscard]] long steps() const { return steps_; }
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
  [[nodiscard]] long steps_per_chunk() const { return steps_per_chunk_; }
  // Distinct IntensityTable objects actually backing the regions — the memo
  // hit metric (regions sharing a grid share one table, pointer-identical).
  [[nodiscard]] std::size_t distinct_intensity_tables() const;

  // Steps between checkpoints under `policy`, rounded up to a chunk
  // boundary; 0 when the policy disables checkpointing.
  [[nodiscard]] long checkpoint_stride_steps(
      const fault::CheckpointPolicy& policy) const;

  // Fresh zeroed checkpoint at step 0.
  [[nodiscard]] Checkpoint start() const;

  // Advances `cp` by up to `max_steps` steps (rounded up to a chunk
  // boundary, clipped to the horizon), sharding regions over the pool.
  void advance(Checkpoint& cp, long max_steps) const;

  [[nodiscard]] bool done(const Checkpoint& cp) const {
    return cp.next_step >= steps_;
  }

  // Folds a completed checkpoint (next_step == steps()) into a Result.
  void finalize_into(const Checkpoint& cp, Result& result) const;
  [[nodiscard]] Result finalize(const Checkpoint& cp) const;

  // start + advance(all) + finalize.
  [[nodiscard]] Result run() const;

  // Lossless JSON snapshot of a checkpoint (schema "sustainai-planet-
  // checkpoint-v1"; see DESIGN.md). The embedded config digest is checked
  // on parse, so a snapshot cannot resume a differently-configured planet.
  [[nodiscard]] report::JsonValue checkpoint_json(const Checkpoint& cp) const;
  [[nodiscard]] Checkpoint parse_checkpoint(
      const report::JsonValue& value) const;

  // FNV-1a digest over every result-affecting config parameter.
  [[nodiscard]] std::string config_digest() const;

 private:
  struct RegionState {
    Cluster shifted_cluster;  // peak hours rebased to the region's UTC offset
    std::shared_ptr<SharedIntensityTable> shared;
    FleetSoA soa;  // built for kSimd only
    // Per-step intensity lane: points into the shared table at the region's
    // offset, or at `gap_lane` when a grid-data-gap remap materialized one.
    const double* intensity = nullptr;
    std::vector<double> gap_lane;
    fault::FaultPlan plan;
    FaultProjection projection;
    long offset_steps = 0;
    double train_servers = 0.0;
  };

  [[nodiscard]] FleetStepInputs inputs_for(const RegionState& st) const;

  Config config_;
  AutoScaler scaler_;
  double step_s_ = 0.0;
  long steps_ = 0;
  long steps_per_chunk_ = 0;
  std::unique_ptr<IntensityCache> owned_cache_;
  IntensityCache* cache_ = nullptr;
  std::vector<RegionState> regions_;
  // Generic segment/merge/snapshot driver (engine/sharded_run.h): one shard
  // per region, shard-major topology.
  engine::ShardedRun<FleetPartial> runner_;
};

}  // namespace sustainai::datacenter
