// Capacity-constrained carbon-aware queueing (Section IV-C).
//
// The slack-window scheduler (scheduler.h) assumes unlimited machines;
// real clusters queue. This discrete-time simulator runs jobs on a fixed
// machine pool: a FIFO baseline starts jobs as machines free up, while the
// green policy additionally holds *deferrable* jobs back while the grid is
// dirty — but never beyond their slack — modeling the interplay the paper
// highlights between carbon-aware shifting and capacity over-provisioning.
#pragma once

#include <string>
#include <vector>

#include "core/carbon_intensity.h"
#include "core/units.h"
#include "datacenter/scheduler.h"
#include "fault/recovery.h"

namespace sustainai::datacenter {

enum class QueuePolicy {
  kFifo,         // start any queued job when a machine frees up
  kGreedyGreen,  // defer while intensity > threshold, within slack
};

[[nodiscard]] const char* to_string(QueuePolicy policy);

struct QueueSimConfig {
  int machines = 8;
  IntermittentGrid::Config grid;
  double pue = 1.10;
  Duration step = minutes(15.0);
  // Green policy: run while instantaneous intensity is at or below this.
  CarbonIntensity green_threshold = grams_per_kwh(250.0);
  // Safety horizon: simulation aborts (throws) if jobs cannot finish
  // within `max_horizon` — indicates an overloaded configuration.
  Duration max_horizon = days(60.0);
  // Serve per-step intensities from a lazily-extended IntensityTable
  // instead of re-evaluating the grid harmonics each step. Bit-identical
  // results either way (see core/intensity_table.h).
  bool use_intensity_table = true;
  // Fault injection (src/fault/): preemption events evict a running job,
  // which loses progress back to its last checkpoint, waits out an
  // exponential backoff, then re-enters the queue and re-consults the
  // scheduling policy. A job preempted more than `faults.retry.max_retries`
  // times aborts the run with fault::RetriesExhaustedError. All-zero rates
  // take the fault-free code path untouched.
  fault::FaultSpec faults;
};

struct CompletedJob {
  BatchJob job;
  Duration start;
  Duration finish;
  CarbonMass carbon;
  [[nodiscard]] Duration wait() const { return start - job.arrival; }
};

struct QueueSimResult {
  std::string policy_name;
  std::vector<CompletedJob> jobs;
  CarbonMass total_carbon;
  Duration mean_wait;
  Duration makespan;  // finish time of the last job
  // Machine-time actually used / machine-time available until makespan.
  double utilization = 0.0;
  int peak_running = 0;
  // Fault-injection outcomes; all-zero when faults are disabled.
  long preemptions = 0;
  fault::Accounting faults;
};

// Jobs must have positive duration; each job occupies one machine for its
// whole duration (non-preemptible).
[[nodiscard]] QueueSimResult run_queue_sim(std::vector<BatchJob> jobs,
                                           const QueueSimConfig& config,
                                           QueuePolicy policy);

}  // namespace sustainai::datacenter
