// Capacity-constrained carbon-aware queueing (Section IV-C).
//
// The slack-window scheduler (scheduler.h) assumes unlimited machines;
// real clusters queue. This discrete-time simulator runs jobs on a fixed
// machine pool: a FIFO baseline starts jobs as machines free up, while the
// green policy additionally holds *deferrable* jobs back while the grid is
// dirty — but never beyond their slack — modeling the interplay the paper
// highlights between carbon-aware shifting and capacity over-provisioning.
//
// The simulator follows the engine checkpoint contract (DESIGN.md §11):
// start() yields a Checkpoint, advance() steps it by a bounded number of
// steps, and finalize() folds a finished Checkpoint into a result. The
// Checkpoint round-trips losslessly through canonical JSON (schema
// "sustainai-queue-checkpoint-v1", engine/snapshot.h envelope), so a run
// killed mid-flight — even with preemption faults in play — resumes in a
// fresh process to the same bytes as an uninterrupted run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/carbon_intensity.h"
#include "core/intensity_table.h"
#include "core/units.h"
#include "datacenter/scheduler.h"
#include "fault/recovery.h"
#include "obs/metrics.h"
#include "report/json.h"

namespace sustainai::datacenter {

enum class QueuePolicy {
  kFifo,         // start any queued job when a machine frees up
  kGreedyGreen,  // defer while intensity > threshold, within slack
};

[[nodiscard]] const char* to_string(QueuePolicy policy);

struct QueueSimConfig {
  int machines = 8;
  IntermittentGrid::Config grid;
  double pue = 1.10;
  Duration step = minutes(15.0);
  // Green policy: run while instantaneous intensity is at or below this.
  CarbonIntensity green_threshold = grams_per_kwh(250.0);
  // Safety horizon: simulation aborts (throws) if jobs cannot finish
  // within `max_horizon` — indicates an overloaded configuration.
  Duration max_horizon = days(60.0);
  // Serve per-step intensities from a lazily-extended IntensityTable
  // instead of re-evaluating the grid harmonics each step. Bit-identical
  // results either way (see core/intensity_table.h).
  bool use_intensity_table = true;
  // Fault injection (src/fault/): preemption events evict a running job,
  // which loses progress back to its last checkpoint, waits out an
  // exponential backoff, then re-enters the queue and re-consults the
  // scheduling policy. A job preempted more than `faults.retry.max_retries`
  // times aborts the run with fault::RetriesExhaustedError. All-zero rates
  // take the fault-free code path untouched.
  fault::FaultSpec faults;
};

struct CompletedJob {
  BatchJob job;
  Duration start;
  Duration finish;
  CarbonMass carbon;
  [[nodiscard]] Duration wait() const { return start - job.arrival; }
};

struct QueueSimResult {
  std::string policy_name;
  std::vector<CompletedJob> jobs;
  CarbonMass total_carbon;
  Duration mean_wait;
  Duration makespan;  // finish time of the last job
  // Machine-time actually used / machine-time available until makespan.
  double utilization = 0.0;
  int peak_running = 0;
  // Fault-injection outcomes; all-zero when faults are disabled.
  long preemptions = 0;
  fault::Accounting faults;
};

// Checkpointable queue simulator. Jobs must have positive duration; each
// job occupies one machine for its whole duration (non-preemptible by the
// scheduler; fault-injected preemptions evict and re-queue).
class QueueSim {
 public:
  // One machine-occupying attempt in flight.
  struct RunningJob {
    std::size_t job_index = 0;
    double remaining_s = 0.0;
    double started_s = 0.0;
    double carbon_g = 0.0;
    // Work this attempt must do (job duration minus checkpointed progress;
    // equal to the job duration when faults are disabled).
    double attempt_total_s = 0.0;
  };

  // Terminal record of a finished job (raw doubles; finalize() rebuilds
  // the typed CompletedJob from these plus the job spec).
  struct JobOutcome {
    bool completed = false;
    double start_s = 0.0;   // first machine grant (survives preemptions)
    double finish_s = 0.0;  // end of the successful attempt
    double carbon_g = 0.0;  // across all attempts
  };

  // Per-job fault-recovery state plus the wasted-work ledger. Sized to the
  // job count when faults are enabled, empty otherwise.
  struct FaultState {
    std::vector<double> preserved_s;         // checkpointed progress per job
    std::vector<double> prior_carbon_g;      // carbon from preempted attempts
    std::vector<double> earliest_restart_s;  // backoff gate per job
    std::vector<double> first_start_s;       // first machine grant per job
    std::vector<int> preempt_count;
    fault::Accounting acc;
  };

  // Resumable run state: the exact simulator state after `next_step` steps.
  // `now_s` is the accumulated clock double, serialized verbatim — it is
  // NOT recomputed as next_step * step on resume, so the float fold of the
  // clock is identical to an uninterrupted run.
  struct Checkpoint {
    long next_step = 0;
    double now_s = 0.0;
    double busy_machine_s = 0.0;
    int peak_running = 0;
    std::size_t next_arrival = 0;  // jobs admitted so far
    std::size_t next_preempt = 0;  // preemption events fired so far
    std::size_t finished = 0;
    std::vector<RunningJob> running;
    std::vector<std::size_t> queue;  // FIFO order of waiting job indices
    std::vector<JobOutcome> outcomes;  // one per job
    FaultState faults;
  };

  // Validates the config, sorts jobs by arrival, and builds all steady-run
  // state (grid, lazily-extended intensity table, fault plan).
  QueueSim(std::vector<BatchJob> jobs, QueueSimConfig config,
           QueuePolicy policy);

  // Non-copyable/movable: the intensity table holds a reference to the
  // simulator-owned grid.
  QueueSim(const QueueSim&) = delete;
  QueueSim& operator=(const QueueSim&) = delete;

  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }
  [[nodiscard]] QueuePolicy policy() const { return policy_; }
  // Upper bound on the run's step count: the max-horizon guard throws
  // before any run exceeds it. Used to size checkpoint segment strides.
  [[nodiscard]] long steps() const {
    return static_cast<long>(to_seconds(config_.max_horizon) / step_s_) + 1;
  }

  // Fresh zeroed checkpoint at step 0.
  [[nodiscard]] Checkpoint start() const;
  // Advances `cp` by up to `max_steps` steps, stopping early when every
  // job has finished. Serial (the queue has a single timeline); throws
  // fault::RetriesExhaustedError / the max-horizon guard exactly where an
  // unsegmented run would.
  void advance(Checkpoint& cp, long max_steps) const;
  [[nodiscard]] bool done(const Checkpoint& cp) const {
    return cp.finished >= jobs_.size();
  }
  // Folds a completed checkpoint into a result.
  [[nodiscard]] QueueSimResult finalize(const Checkpoint& cp) const;

  // start + advance(all) + finalize.
  [[nodiscard]] QueueSimResult run() const;

  // Lossless JSON snapshot of a checkpoint (schema
  // "sustainai-queue-checkpoint-v1"). The embedded config digest is checked
  // on parse (engine::SnapshotDigestMismatch), so a snapshot cannot resume
  // a differently-configured queue.
  [[nodiscard]] report::JsonValue checkpoint_json(const Checkpoint& cp) const;
  [[nodiscard]] Checkpoint parse_checkpoint(
      const report::JsonValue& value) const;

  // FNV-1a digest over every result-affecting config parameter (machine
  // pool, grid, policy, fault block including the retry policy, and the
  // full sorted job list).
  [[nodiscard]] std::string config_digest() const;

 private:
  void step_once(Checkpoint& cp, obs::Gauge& depth_gauge) const;

  std::vector<BatchJob> jobs_;  // sorted by arrival
  QueueSimConfig config_;
  QueuePolicy policy_;
  double step_s_ = 0.0;
  bool faults_enabled_ = false;
  IntermittentGrid grid_;
  IntensityTable table_;
  fault::FaultPlan plan_;
  std::vector<fault::FaultEvent> preempt_events_;
};

// Jobs must have positive duration; each job occupies one machine for its
// whole duration (non-preemptible). Equivalent to QueueSim's
// start + advance(all) + finalize, byte-for-byte.
[[nodiscard]] QueueSimResult run_queue_sim(std::vector<BatchJob> jobs,
                                           const QueueSimConfig& config,
                                           QueuePolicy policy);

}  // namespace sustainai::datacenter
