#include "datacenter/queue_sim.h"

#include <algorithm>

#include "core/check.h"
#include "core/intensity_table.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sustainai::datacenter {

const char* to_string(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFifo:
      return "queue-fifo";
    case QueuePolicy::kGreedyGreen:
      return "queue-green";
  }
  return "unknown";
}

QueueSimResult run_queue_sim(std::vector<BatchJob> jobs,
                             const QueueSimConfig& config, QueuePolicy policy) {
  check_arg(config.machines >= 1, "run_queue_sim: need >= 1 machine");
  check_arg(to_seconds(config.step) > 0.0, "run_queue_sim: step must be > 0");
  for (const BatchJob& j : jobs) {
    check_arg(to_seconds(j.duration) > 0.0,
              "run_queue_sim: job durations must be positive");
    check_arg(to_seconds(j.slack) >= 0.0,
              "run_queue_sim: job slack must be >= 0");
  }
  std::sort(jobs.begin(), jobs.end(), [](const BatchJob& a, const BatchJob& b) {
    return to_seconds(a.arrival) < to_seconds(b.arrival);
  });

  obs::Span sim_span("queue.sim");
  sim_span.label("policy", to_string(policy));
  const obs::Labels policy_labels{{"policy", to_string(policy)}};
  // Hoisted: the gauge reference is stable, so the per-step update below is
  // lock-light (no registry lookup inside the loop).
  obs::Gauge& depth_gauge =
      obs::MetricsRegistry::global().gauge("queue_depth", policy_labels);

  const IntermittentGrid grid(config.grid);
  IntensityTable table(grid, seconds(0.0), config.step);
  struct Running {
    std::size_t job_index;
    double remaining_s;
    double started_s;
    double carbon_g = 0.0;
  };
  std::vector<Running> running;
  std::vector<std::size_t> queue;  // FIFO order of waiting job indices
  std::vector<CompletedJob> done(jobs.size());
  std::vector<bool> completed(jobs.size(), false);

  const double step_s = to_seconds(config.step);
  std::size_t next_arrival = 0;
  std::size_t finished = 0;
  double now_s = 0.0;
  double busy_machine_s = 0.0;
  int peak_running = 0;

  while (finished < jobs.size()) {
    check_arg(now_s <= to_seconds(config.max_horizon),
              "run_queue_sim: exceeded max horizon (overloaded config?)");
    // Admit arrivals up to now.
    while (next_arrival < jobs.size() &&
           to_seconds(jobs[next_arrival].arrival) <= now_s + 1e-9) {
      queue.push_back(next_arrival);
      ++next_arrival;
    }
    // One grid lookup per step, shared by the admission decision and the
    // energy accounting below — they must never drift apart.
    const double intensity_now =
        (config.use_intensity_table ? table.intensity_at(seconds(now_s))
                                    : grid.intensity_at(seconds(now_s)))
            .base();
    // Start jobs while machines are free.
    std::vector<std::size_t> still_waiting;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::size_t ji = queue[qi];
      if (static_cast<int>(running.size()) >= config.machines) {
        still_waiting.insert(still_waiting.end(), queue.begin() + qi,
                             queue.end());
        break;
      }
      const BatchJob& job = jobs[ji];
      const double waited_s = now_s - to_seconds(job.arrival);
      bool start = true;
      if (policy == QueuePolicy::kGreedyGreen &&
          waited_s + 1e-9 < to_seconds(job.slack) &&
          intensity_now > config.green_threshold.base()) {
        start = false;  // defer: grid is dirty and we still have slack
      }
      if (start) {
        running.push_back(Running{ji, to_seconds(job.duration), now_s});
      } else {
        still_waiting.push_back(ji);
      }
    }
    queue.swap(still_waiting);
    peak_running = std::max(peak_running, static_cast<int>(running.size()));
    depth_gauge.set(static_cast<double>(running.size() + queue.size()));

    // Advance one step.
    for (Running& r : running) {
      const double dt = std::min(step_s, r.remaining_s);
      const double energy_j =
          to_watts(jobs[r.job_index].power) * dt * config.pue;
      r.carbon_g += energy_j * intensity_now;
      r.remaining_s -= dt;
      busy_machine_s += dt;
    }
    now_s += step_s;
    // Retire finished jobs.
    for (std::size_t i = 0; i < running.size();) {
      if (running[i].remaining_s <= 1e-9) {
        const Running& r = running[i];
        CompletedJob c;
        c.job = jobs[r.job_index];
        c.start = seconds(r.started_s);
        c.finish = seconds(r.started_s + to_seconds(c.job.duration));
        c.carbon = grams_co2e(r.carbon_g);
        // One deterministic lane per job (kUserTrackBase + index), so the
        // exported span order is a pure function of the job set.
        const double arrival_s = to_seconds(c.job.arrival);
        if (r.started_s > arrival_s) {
          obs::Span wait_span("queue.wait", arrival_s, r.started_s);
          wait_span.set_track(obs::kUserTrackBase + r.job_index);
          wait_span.label("id", c.job.id);
        }
        {
          obs::Span job_span("queue.job", r.started_s, to_seconds(c.finish));
          job_span.set_track(obs::kUserTrackBase + r.job_index);
          job_span.label("id", c.job.id);
        }
        done[r.job_index] = c;
        completed[r.job_index] = true;
        ++finished;
        running[i] = running.back();
        running.pop_back();
      } else {
        ++i;
      }
    }
  }

  QueueSimResult result;
  result.policy_name = to_string(policy);
  result.total_carbon = grams_co2e(0.0);
  double wait_s = 0.0;
  double makespan_s = 0.0;
  for (const CompletedJob& c : done) {
    result.total_carbon += c.carbon;
    wait_s += to_seconds(c.wait());
    makespan_s = std::max(makespan_s, to_seconds(c.finish));
  }
  result.mean_wait =
      seconds(jobs.empty() ? 0.0 : wait_s / static_cast<double>(jobs.size()));
  result.makespan = seconds(makespan_s);
  result.utilization =
      makespan_s > 0.0 ? busy_machine_s / (makespan_s * config.machines) : 0.0;
  result.peak_running = peak_running;
  result.jobs = std::move(done);

  sim_span.sim_interval(0.0, now_s);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.counter("queue_sim_carbon_grams", policy_labels)
      .add(to_grams_co2e(result.total_carbon));
  metrics.counter("queue_sim_jobs", policy_labels)
      .add(static_cast<double>(result.jobs.size()));
  return result;
}

}  // namespace sustainai::datacenter
