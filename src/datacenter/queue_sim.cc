#include "datacenter/queue_sim.h"

#include <algorithm>

#include "core/check.h"
#include "core/intensity_table.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sustainai::datacenter {

const char* to_string(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFifo:
      return "queue-fifo";
    case QueuePolicy::kGreedyGreen:
      return "queue-green";
  }
  return "unknown";
}

QueueSimResult run_queue_sim(std::vector<BatchJob> jobs,
                             const QueueSimConfig& config, QueuePolicy policy) {
  check_arg(config.machines >= 1, "run_queue_sim: need >= 1 machine");
  check_arg(to_seconds(config.step) > 0.0, "run_queue_sim: step must be > 0");
  for (const BatchJob& j : jobs) {
    check_arg(to_seconds(j.duration) > 0.0,
              "run_queue_sim: job durations must be positive");
    check_arg(to_seconds(j.slack) >= 0.0,
              "run_queue_sim: job slack must be >= 0");
  }
  std::sort(jobs.begin(), jobs.end(), [](const BatchJob& a, const BatchJob& b) {
    return to_seconds(a.arrival) < to_seconds(b.arrival);
  });

  obs::Span sim_span("queue.sim");
  sim_span.label("policy", to_string(policy));
  const obs::Labels policy_labels{{"policy", to_string(policy)}};
  // Hoisted: the gauge reference is stable, so the per-step update below is
  // lock-light (no registry lookup inside the loop).
  obs::Gauge& depth_gauge =
      obs::MetricsRegistry::global().gauge("queue_depth", policy_labels);

  const IntermittentGrid grid(config.grid);
  IntensityTable table(grid, seconds(0.0), config.step);
  struct Running {
    std::size_t job_index;
    double remaining_s;
    double started_s;
    double carbon_g = 0.0;
    // Work this attempt must do (job duration minus checkpointed progress;
    // equal to the job duration when faults are disabled).
    double attempt_total_s = 0.0;
  };
  std::vector<Running> running;
  std::vector<std::size_t> queue;  // FIFO order of waiting job indices
  std::vector<CompletedJob> done(jobs.size());
  std::vector<bool> completed(jobs.size(), false);

  // Fault injection: the plan spans max_horizon so the schedule never
  // depends on the (fault-dependent) makespan.
  const bool faults_enabled = config.faults.enabled();
  const fault::FaultPlan plan = faults_enabled
                                    ? config.faults.plan(config.max_horizon)
                                    : fault::FaultPlan();
  const std::vector<fault::FaultEvent> preempt_events =
      plan.events_of(fault::FaultKind::kJobPreemption);
  std::size_t next_preempt = 0;
  fault::Accounting acc;
  std::vector<double> preserved_s;         // checkpointed progress per job
  std::vector<double> prior_carbon_g;      // carbon from preempted attempts
  std::vector<double> earliest_restart_s;  // backoff gate per job
  std::vector<double> first_start_s;       // first machine grant per job
  std::vector<int> preempt_count;
  if (faults_enabled) {
    preserved_s.assign(jobs.size(), 0.0);
    prior_carbon_g.assign(jobs.size(), 0.0);
    earliest_restart_s.assign(jobs.size(), 0.0);
    first_start_s.assign(jobs.size(), -1.0);
    preempt_count.assign(jobs.size(), 0);
  }

  const double step_s = to_seconds(config.step);
  std::size_t next_arrival = 0;
  std::size_t finished = 0;
  double now_s = 0.0;
  double busy_machine_s = 0.0;
  int peak_running = 0;

  while (finished < jobs.size()) {
    check_arg(now_s <= to_seconds(config.max_horizon),
              "run_queue_sim: exceeded max horizon (overloaded config?)");
    // Admit arrivals up to now.
    while (next_arrival < jobs.size() &&
           to_seconds(jobs[next_arrival].arrival) <= now_s + 1e-9) {
      queue.push_back(next_arrival);
      ++next_arrival;
    }
    // Fire due preemption events: the victim loses progress back to its
    // last checkpoint, re-enters the queue, and re-consults the policy
    // after an exponential backoff.
    while (next_preempt < preempt_events.size() &&
           to_seconds(preempt_events[next_preempt].time) <= now_s + 1e-9) {
      const fault::FaultEvent e = preempt_events[next_preempt];
      ++next_preempt;
      if (running.empty()) {
        continue;  // nothing to evict at this instant
      }
      const std::size_t vi = static_cast<std::size_t>(
          e.target % static_cast<std::uint64_t>(running.size()));
      const Running r = running[vi];
      const std::size_t ji = r.job_index;
      ++acc.faults_injected;
      ++preempt_count[ji];
      const double done_this_attempt = r.attempt_total_s - r.remaining_s;
      const double lost_s = to_seconds(
          config.faults.checkpoint.lost_work(seconds(done_this_attempt)));
      acc.redone_work_hours += lost_s / kSecondsPerHour;
      acc.wasted_energy +=
          joules(to_watts(jobs[ji].power) * lost_s * config.pue);
      if (preempt_count[ji] > config.faults.retry.max_retries) {
        throw fault::RetriesExhaustedError(
            "job '" + jobs[ji].id + "' preempted " +
                std::to_string(preempt_count[ji]) +
                " times, exceeding max_retries=" +
                std::to_string(config.faults.retry.max_retries),
            acc);
      }
      ++acc.recoveries;
      preserved_s[ji] += done_this_attempt - lost_s;
      prior_carbon_g[ji] += r.carbon_g;
      earliest_restart_s[ji] =
          now_s +
          to_seconds(config.faults.retry.backoff_after(preempt_count[ji] - 1));
      {
        obs::Span span("queue.preempt", r.started_s, now_s);
        span.set_track(obs::kUserTrackBase + ji);
        span.label("id", jobs[ji].id);
      }
      queue.push_back(ji);
      running[vi] = running.back();
      running.pop_back();
    }
    // One grid lookup per step, shared by the admission decision and the
    // energy accounting below — they must never drift apart.
    const double intensity_now =
        (config.use_intensity_table ? table.intensity_at(seconds(now_s))
                                    : grid.intensity_at(seconds(now_s)))
            .base();
    // Start jobs while machines are free.
    std::vector<std::size_t> still_waiting;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::size_t ji = queue[qi];
      if (static_cast<int>(running.size()) >= config.machines) {
        still_waiting.insert(still_waiting.end(), queue.begin() + qi,
                             queue.end());
        break;
      }
      const BatchJob& job = jobs[ji];
      if (faults_enabled && now_s + 1e-9 < earliest_restart_s[ji]) {
        still_waiting.push_back(ji);  // still backing off after preemption
        continue;
      }
      const double waited_s = now_s - to_seconds(job.arrival);
      bool start = true;
      if (policy == QueuePolicy::kGreedyGreen &&
          waited_s + 1e-9 < to_seconds(job.slack) &&
          intensity_now > config.green_threshold.base()) {
        start = false;  // defer: grid is dirty and we still have slack
      }
      if (start) {
        double attempt_total = to_seconds(job.duration);
        if (faults_enabled) {
          attempt_total -= preserved_s[ji];
          if (first_start_s[ji] < 0.0) {
            first_start_s[ji] = now_s;
          }
        }
        running.push_back(Running{ji, attempt_total, now_s, 0.0, attempt_total});
      } else {
        still_waiting.push_back(ji);
      }
    }
    queue.swap(still_waiting);
    peak_running = std::max(peak_running, static_cast<int>(running.size()));
    depth_gauge.set(static_cast<double>(running.size() + queue.size()));

    // Advance one step.
    for (Running& r : running) {
      const double dt = std::min(step_s, r.remaining_s);
      const double energy_j =
          to_watts(jobs[r.job_index].power) * dt * config.pue;
      r.carbon_g += energy_j * intensity_now;
      r.remaining_s -= dt;
      busy_machine_s += dt;
    }
    now_s += step_s;
    // Retire finished jobs.
    for (std::size_t i = 0; i < running.size();) {
      if (running[i].remaining_s <= 1e-9) {
        const Running& r = running[i];
        CompletedJob c;
        c.job = jobs[r.job_index];
        const double start_s =
            faults_enabled && first_start_s[r.job_index] >= 0.0
                ? first_start_s[r.job_index]
                : r.started_s;
        c.start = seconds(start_s);
        c.finish = seconds(r.started_s + r.attempt_total_s);
        c.carbon = grams_co2e(
            faults_enabled ? prior_carbon_g[r.job_index] + r.carbon_g
                           : r.carbon_g);
        if (faults_enabled) {
          // Checkpoint overhead is charged per unit of useful work done;
          // it is accounting-only so the step timeline stays untouched.
          const long cps = config.faults.checkpoint.checkpoints_over(
              c.job.duration);
          acc.checkpoints += cps;
          acc.checkpoint_energy += joules(
              to_watts(c.job.power) *
              to_seconds(config.faults.checkpoint.cost) *
              static_cast<double>(cps) * config.pue);
        }
        // One deterministic lane per job (kUserTrackBase + index), so the
        // exported span order is a pure function of the job set.
        const double arrival_s = to_seconds(c.job.arrival);
        if (start_s > arrival_s) {
          obs::Span wait_span("queue.wait", arrival_s, start_s);
          wait_span.set_track(obs::kUserTrackBase + r.job_index);
          wait_span.label("id", c.job.id);
        }
        {
          obs::Span job_span("queue.job", r.started_s, to_seconds(c.finish));
          job_span.set_track(obs::kUserTrackBase + r.job_index);
          job_span.label("id", c.job.id);
        }
        done[r.job_index] = c;
        completed[r.job_index] = true;
        ++finished;
        running[i] = running.back();
        running.pop_back();
      } else {
        ++i;
      }
    }
  }

  QueueSimResult result;
  result.policy_name = to_string(policy);
  result.total_carbon = grams_co2e(0.0);
  double wait_s = 0.0;
  double makespan_s = 0.0;
  for (const CompletedJob& c : done) {
    result.total_carbon += c.carbon;
    wait_s += to_seconds(c.wait());
    makespan_s = std::max(makespan_s, to_seconds(c.finish));
  }
  result.mean_wait =
      seconds(jobs.empty() ? 0.0 : wait_s / static_cast<double>(jobs.size()));
  result.makespan = seconds(makespan_s);
  result.utilization =
      makespan_s > 0.0 ? busy_machine_s / (makespan_s * config.machines) : 0.0;
  result.peak_running = peak_running;
  result.jobs = std::move(done);
  result.preemptions = acc.faults_injected;
  result.faults = acc;

  sim_span.sim_interval(0.0, now_s);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.counter("queue_sim_carbon_grams", policy_labels)
      .add(to_grams_co2e(result.total_carbon));
  metrics.counter("queue_sim_jobs", policy_labels)
      .add(static_cast<double>(result.jobs.size()));
  if (faults_enabled) {
    metrics.counter("queue_preemptions_total", policy_labels)
        .add(static_cast<double>(acc.faults_injected));
    metrics.counter("queue_fault_redone_work_hours", policy_labels)
        .add(acc.redone_work_hours);
    metrics.counter("queue_fault_wasted_energy_joules", policy_labels)
        .add(to_joules(acc.wasted_energy));
  }
  return result;
}

}  // namespace sustainai::datacenter
