#include "datacenter/queue_sim.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "core/check.h"
#include "core/intensity_cache.h"
#include "datacenter/fleet_sim.h"
#include "engine/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sustainai::datacenter {

namespace {

constexpr const char* kCheckpointSchema = "sustainai-queue-checkpoint-v1";
constexpr const char* kCheckpointContext = "queue checkpoint";

std::size_t require_index(const report::JsonValue& object, const char* key,
                          std::size_t bound, const char* what) {
  const long v = engine::require_integer(object, key, kCheckpointContext);
  check_arg(v >= 0 && static_cast<std::size_t>(v) <= bound,
            std::string(kCheckpointContext) + ": " + what + " out of range");
  return static_cast<std::size_t>(v);
}

// Validation happens in the member-init list (before the grid / intensity
// table are built from the config), preserving the legacy error precedence.
std::vector<BatchJob> checked_jobs(std::vector<BatchJob> jobs) {
  for (const BatchJob& j : jobs) {
    check_arg(to_seconds(j.duration) > 0.0,
              "run_queue_sim: job durations must be positive");
    check_arg(to_seconds(j.slack) >= 0.0,
              "run_queue_sim: job slack must be >= 0");
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const BatchJob& a, const BatchJob& b) {
              return to_seconds(a.arrival) < to_seconds(b.arrival);
            });
  return jobs;
}

QueueSimConfig checked_config(QueueSimConfig config) {
  check_arg(config.machines >= 1, "run_queue_sim: need >= 1 machine");
  check_arg(to_seconds(config.step) > 0.0, "run_queue_sim: step must be > 0");
  return config;
}

}  // namespace

const char* to_string(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFifo:
      return "queue-fifo";
    case QueuePolicy::kGreedyGreen:
      return "queue-green";
  }
  return "unknown";
}

QueueSim::QueueSim(std::vector<BatchJob> jobs, QueueSimConfig config,
                   QueuePolicy policy)
    : jobs_(checked_jobs(std::move(jobs))),
      config_(checked_config(std::move(config))),
      policy_(policy),
      grid_(config_.grid),
      table_(grid_, seconds(0.0), config_.step) {
  step_s_ = to_seconds(config_.step);
  faults_enabled_ = config_.faults.enabled();
  // The plan spans max_horizon so the schedule never depends on the
  // (fault-dependent) makespan.
  if (faults_enabled_) {
    plan_ = config_.faults.plan(config_.max_horizon);
    preempt_events_ = plan_.events_of(fault::FaultKind::kJobPreemption);
  }
}

QueueSim::Checkpoint QueueSim::start() const {
  Checkpoint cp;
  cp.outcomes.assign(jobs_.size(), JobOutcome{});
  if (faults_enabled_) {
    cp.faults.preserved_s.assign(jobs_.size(), 0.0);
    cp.faults.prior_carbon_g.assign(jobs_.size(), 0.0);
    cp.faults.earliest_restart_s.assign(jobs_.size(), 0.0);
    cp.faults.first_start_s.assign(jobs_.size(), -1.0);
    cp.faults.preempt_count.assign(jobs_.size(), 0);
  }
  return cp;
}

void QueueSim::step_once(Checkpoint& cp, obs::Gauge& depth_gauge) const {
  check_arg(cp.now_s <= to_seconds(config_.max_horizon),
            "run_queue_sim: exceeded max horizon (overloaded config?)");
  // Admit arrivals up to now.
  while (cp.next_arrival < jobs_.size() &&
         to_seconds(jobs_[cp.next_arrival].arrival) <= cp.now_s + 1e-9) {
    cp.queue.push_back(cp.next_arrival);
    ++cp.next_arrival;
  }
  // Fire due preemption events: the victim loses progress back to its
  // last checkpoint, re-enters the queue, and re-consults the policy
  // after an exponential backoff.
  while (cp.next_preempt < preempt_events_.size() &&
         to_seconds(preempt_events_[cp.next_preempt].time) <= cp.now_s + 1e-9) {
    const fault::FaultEvent e = preempt_events_[cp.next_preempt];
    ++cp.next_preempt;
    if (cp.running.empty()) {
      continue;  // nothing to evict at this instant
    }
    const std::size_t vi = static_cast<std::size_t>(
        e.target % static_cast<std::uint64_t>(cp.running.size()));
    const RunningJob r = cp.running[vi];
    const std::size_t ji = r.job_index;
    ++cp.faults.acc.faults_injected;
    ++cp.faults.preempt_count[ji];
    const double done_this_attempt = r.attempt_total_s - r.remaining_s;
    const double lost_s = to_seconds(
        config_.faults.checkpoint.lost_work(seconds(done_this_attempt)));
    cp.faults.acc.redone_work_hours += lost_s / kSecondsPerHour;
    cp.faults.acc.wasted_energy +=
        joules(to_watts(jobs_[ji].power) * lost_s * config_.pue);
    if (cp.faults.preempt_count[ji] > config_.faults.retry.max_retries) {
      throw fault::RetriesExhaustedError(
          "job '" + jobs_[ji].id + "' preempted " +
              std::to_string(cp.faults.preempt_count[ji]) +
              " times, exceeding max_retries=" +
              std::to_string(config_.faults.retry.max_retries),
          cp.faults.acc);
    }
    ++cp.faults.acc.recoveries;
    cp.faults.preserved_s[ji] += done_this_attempt - lost_s;
    cp.faults.prior_carbon_g[ji] += r.carbon_g;
    cp.faults.earliest_restart_s[ji] =
        cp.now_s + to_seconds(config_.faults.retry.backoff_after(
                       cp.faults.preempt_count[ji] - 1));
    {
      obs::Span span("queue.preempt", r.started_s, cp.now_s);
      span.set_track(obs::kUserTrackBase + ji);
      span.label("id", jobs_[ji].id);
    }
    cp.queue.push_back(ji);
    cp.running[vi] = cp.running.back();
    cp.running.pop_back();
  }
  // One grid lookup per step, shared by the admission decision and the
  // energy accounting below — they must never drift apart.
  const double intensity_now =
      (config_.use_intensity_table ? table_.intensity_at(seconds(cp.now_s))
                                   : grid_.intensity_at(seconds(cp.now_s)))
          .base();
  // Start jobs while machines are free.
  std::vector<std::size_t> still_waiting;
  for (std::size_t qi = 0; qi < cp.queue.size(); ++qi) {
    const std::size_t ji = cp.queue[qi];
    if (static_cast<int>(cp.running.size()) >= config_.machines) {
      still_waiting.insert(still_waiting.end(), cp.queue.begin() + qi,
                           cp.queue.end());
      break;
    }
    const BatchJob& job = jobs_[ji];
    if (faults_enabled_ && cp.now_s + 1e-9 < cp.faults.earliest_restart_s[ji]) {
      still_waiting.push_back(ji);  // still backing off after preemption
      continue;
    }
    const double waited_s = cp.now_s - to_seconds(job.arrival);
    bool start = true;
    if (policy_ == QueuePolicy::kGreedyGreen &&
        waited_s + 1e-9 < to_seconds(job.slack) &&
        intensity_now > config_.green_threshold.base()) {
      start = false;  // defer: grid is dirty and we still have slack
    }
    if (start) {
      double attempt_total = to_seconds(job.duration);
      if (faults_enabled_) {
        attempt_total -= cp.faults.preserved_s[ji];
        if (cp.faults.first_start_s[ji] < 0.0) {
          cp.faults.first_start_s[ji] = cp.now_s;
        }
      }
      cp.running.push_back(
          RunningJob{ji, attempt_total, cp.now_s, 0.0, attempt_total});
    } else {
      still_waiting.push_back(ji);
    }
  }
  cp.queue.swap(still_waiting);
  cp.peak_running =
      std::max(cp.peak_running, static_cast<int>(cp.running.size()));
  depth_gauge.set(static_cast<double>(cp.running.size() + cp.queue.size()));

  // Advance one step.
  for (RunningJob& r : cp.running) {
    const double dt = std::min(step_s_, r.remaining_s);
    const double energy_j =
        to_watts(jobs_[r.job_index].power) * dt * config_.pue;
    r.carbon_g += energy_j * intensity_now;
    r.remaining_s -= dt;
    cp.busy_machine_s += dt;
  }
  cp.now_s += step_s_;
  ++cp.next_step;
  // Retire finished jobs.
  for (std::size_t i = 0; i < cp.running.size();) {
    if (cp.running[i].remaining_s <= 1e-9) {
      const RunningJob& r = cp.running[i];
      const std::size_t ji = r.job_index;
      JobOutcome& out = cp.outcomes[ji];
      out.completed = true;
      out.start_s = faults_enabled_ && cp.faults.first_start_s[ji] >= 0.0
                        ? cp.faults.first_start_s[ji]
                        : r.started_s;
      out.finish_s = r.started_s + r.attempt_total_s;
      out.carbon_g = faults_enabled_
                         ? cp.faults.prior_carbon_g[ji] + r.carbon_g
                         : r.carbon_g;
      if (faults_enabled_) {
        // Checkpoint overhead is charged per unit of useful work done;
        // it is accounting-only so the step timeline stays untouched.
        const long cps =
            config_.faults.checkpoint.checkpoints_over(jobs_[ji].duration);
        cp.faults.acc.checkpoints += cps;
        cp.faults.acc.checkpoint_energy +=
            joules(to_watts(jobs_[ji].power) *
                   to_seconds(config_.faults.checkpoint.cost) *
                   static_cast<double>(cps) * config_.pue);
      }
      // One deterministic lane per job (kUserTrackBase + index), so the
      // exported span order is a pure function of the job set.
      const double arrival_s = to_seconds(jobs_[ji].arrival);
      if (out.start_s > arrival_s) {
        obs::Span wait_span("queue.wait", arrival_s, out.start_s);
        wait_span.set_track(obs::kUserTrackBase + ji);
        wait_span.label("id", jobs_[ji].id);
      }
      {
        obs::Span job_span("queue.job", r.started_s, out.finish_s);
        job_span.set_track(obs::kUserTrackBase + ji);
        job_span.label("id", jobs_[ji].id);
      }
      ++cp.finished;
      cp.running[i] = cp.running.back();
      cp.running.pop_back();
    } else {
      ++i;
    }
  }
}

void QueueSim::advance(Checkpoint& cp, long max_steps) const {
  check_arg(max_steps >= 1, "QueueSim::advance: max_steps must be >= 1");
  check_arg(cp.outcomes.size() == jobs_.size(),
            "QueueSim::advance: checkpoint job count mismatch");

  obs::Span sim_span("queue.sim");
  sim_span.label("policy", to_string(policy_));
  // Hoisted: the gauge reference is stable, so the per-step update below is
  // lock-light (no registry lookup inside the loop).
  obs::Gauge& depth_gauge = obs::MetricsRegistry::global().gauge(
      "queue_depth", obs::Labels{{"policy", to_string(policy_)}});

  const double begin_s = cp.now_s;
  long stepped = 0;
  while (cp.finished < jobs_.size() && stepped < max_steps) {
    step_once(cp, depth_gauge);
    ++stepped;
  }
  sim_span.sim_interval(begin_s, cp.now_s);
}

QueueSimResult QueueSim::finalize(const Checkpoint& cp) const {
  check_arg(cp.finished >= jobs_.size(),
            "QueueSim::finalize: checkpoint has not finished every job");
  check_arg(cp.outcomes.size() == jobs_.size(),
            "QueueSim::finalize: checkpoint job count mismatch");

  // Rebuild the typed per-job records in job-index order, then fold the
  // totals left-to-right in the same order — identical to the legacy
  // single-pass simulator's expression tree.
  std::vector<CompletedJob> done(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobOutcome& out = cp.outcomes[i];
    CompletedJob c;
    c.job = jobs_[i];
    c.start = seconds(out.start_s);
    c.finish = seconds(out.finish_s);
    c.carbon = grams_co2e(out.carbon_g);
    done[i] = c;
  }

  QueueSimResult result;
  result.policy_name = to_string(policy_);
  result.total_carbon = grams_co2e(0.0);
  double wait_s = 0.0;
  double makespan_s = 0.0;
  for (const CompletedJob& c : done) {
    result.total_carbon += c.carbon;
    wait_s += to_seconds(c.wait());
    makespan_s = std::max(makespan_s, to_seconds(c.finish));
  }
  result.mean_wait =
      seconds(jobs_.empty() ? 0.0 : wait_s / static_cast<double>(jobs_.size()));
  result.makespan = seconds(makespan_s);
  result.utilization = makespan_s > 0.0
                           ? cp.busy_machine_s / (makespan_s * config_.machines)
                           : 0.0;
  result.peak_running = cp.peak_running;
  result.jobs = std::move(done);
  result.preemptions = cp.faults.acc.faults_injected;
  result.faults = cp.faults.acc;

  const obs::Labels policy_labels{{"policy", to_string(policy_)}};
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.counter("queue_sim_carbon_grams", policy_labels)
      .add(to_grams_co2e(result.total_carbon));
  metrics.counter("queue_sim_jobs", policy_labels)
      .add(static_cast<double>(result.jobs.size()));
  if (faults_enabled_) {
    metrics.counter("queue_preemptions_total", policy_labels)
        .add(static_cast<double>(cp.faults.acc.faults_injected));
    metrics.counter("queue_fault_redone_work_hours", policy_labels)
        .add(cp.faults.acc.redone_work_hours);
    metrics.counter("queue_fault_wasted_energy_joules", policy_labels)
        .add(to_joules(cp.faults.acc.wasted_energy));
  }
  return result;
}

QueueSimResult QueueSim::run() const {
  Checkpoint cp = start();
  if (!done(cp)) {
    advance(cp, std::numeric_limits<long>::max());
  }
  return finalize(cp);
}

report::JsonValue QueueSim::checkpoint_json(const Checkpoint& cp) const {
  report::JsonValue root = report::JsonValue::object();
  engine::write_envelope(root, kCheckpointSchema, config_digest());
  root.set("next_step", report::JsonValue::number(
                            static_cast<double>(cp.next_step)));
  root.set("now_s", report::JsonValue::number(cp.now_s));
  root.set("busy_machine_s", report::JsonValue::number(cp.busy_machine_s));
  root.set("peak_running", report::JsonValue::number(
                               static_cast<double>(cp.peak_running)));
  root.set("next_arrival", report::JsonValue::number(
                               static_cast<double>(cp.next_arrival)));
  root.set("next_preempt", report::JsonValue::number(
                               static_cast<double>(cp.next_preempt)));

  report::JsonValue running = report::JsonValue::array();
  for (const RunningJob& r : cp.running) {
    report::JsonValue j = report::JsonValue::object();
    j.set("job", report::JsonValue::number(static_cast<double>(r.job_index)));
    j.set("remaining_s", report::JsonValue::number(r.remaining_s));
    j.set("started_s", report::JsonValue::number(r.started_s));
    j.set("carbon_g", report::JsonValue::number(r.carbon_g));
    j.set("attempt_total_s", report::JsonValue::number(r.attempt_total_s));
    running.append(std::move(j));
  }
  root.set("running", std::move(running));

  report::JsonValue queue = report::JsonValue::array();
  for (const std::size_t ji : cp.queue) {
    queue.append(report::JsonValue::number(static_cast<double>(ji)));
  }
  root.set("queue", std::move(queue));

  // Sparse: only completed jobs appear; `finished` is recomputed on parse.
  report::JsonValue outcomes = report::JsonValue::array();
  for (std::size_t i = 0; i < cp.outcomes.size(); ++i) {
    const JobOutcome& out = cp.outcomes[i];
    if (!out.completed) {
      continue;
    }
    report::JsonValue j = report::JsonValue::object();
    j.set("job", report::JsonValue::number(static_cast<double>(i)));
    j.set("start_s", report::JsonValue::number(out.start_s));
    j.set("finish_s", report::JsonValue::number(out.finish_s));
    j.set("carbon_g", report::JsonValue::number(out.carbon_g));
    outcomes.append(std::move(j));
  }
  root.set("outcomes", std::move(outcomes));

  if (faults_enabled_) {
    report::JsonValue f = report::JsonValue::object();
    const auto lane = [](const std::vector<double>& v) {
      report::JsonValue a = report::JsonValue::array();
      for (const double x : v) {
        a.append(report::JsonValue::number(x));
      }
      return a;
    };
    f.set("preserved_s", lane(cp.faults.preserved_s));
    f.set("prior_carbon_g", lane(cp.faults.prior_carbon_g));
    f.set("earliest_restart_s", lane(cp.faults.earliest_restart_s));
    f.set("first_start_s", lane(cp.faults.first_start_s));
    report::JsonValue counts = report::JsonValue::array();
    for (const int c : cp.faults.preempt_count) {
      counts.append(report::JsonValue::number(static_cast<double>(c)));
    }
    f.set("preempt_count", std::move(counts));
    const fault::Accounting& acc = cp.faults.acc;
    f.set("faults_injected", report::JsonValue::number(
                                 static_cast<double>(acc.faults_injected)));
    f.set("recoveries",
          report::JsonValue::number(static_cast<double>(acc.recoveries)));
    f.set("checkpoints",
          report::JsonValue::number(static_cast<double>(acc.checkpoints)));
    f.set("redone_work_hours",
          report::JsonValue::number(acc.redone_work_hours));
    f.set("lost_capacity_hours",
          report::JsonValue::number(acc.lost_capacity_hours));
    f.set("wasted_energy_j",
          report::JsonValue::number(to_joules(acc.wasted_energy)));
    f.set("checkpoint_energy_j",
          report::JsonValue::number(to_joules(acc.checkpoint_energy)));
    root.set("faults", std::move(f));
  }
  return root;
}

QueueSim::Checkpoint QueueSim::parse_checkpoint(
    const report::JsonValue& value) const {
  engine::check_envelope(value, kCheckpointSchema, config_digest(),
                         kCheckpointContext);
  Checkpoint cp = start();
  cp.next_step = engine::require_integer(value, "next_step", kCheckpointContext);
  check_arg(cp.next_step >= 0,
            "queue checkpoint: next_step must be non-negative");
  cp.now_s = engine::require_number(value, "now_s", kCheckpointContext);
  cp.busy_machine_s =
      engine::require_number(value, "busy_machine_s", kCheckpointContext);
  cp.peak_running = static_cast<int>(
      engine::require_integer(value, "peak_running", kCheckpointContext));
  cp.next_arrival =
      require_index(value, "next_arrival", jobs_.size(), "next_arrival");
  cp.next_preempt = require_index(value, "next_preempt",
                                  preempt_events_.size(), "next_preempt");

  const report::JsonValue& running =
      engine::require_member(value, "running", kCheckpointContext);
  check_arg(running.is_array(), "queue checkpoint: running must be an array");
  for (const report::JsonValue& j : running.items()) {
    check_arg(j.is_object(),
              "queue checkpoint: running entries must be objects");
    RunningJob r;
    r.job_index =
        require_index(j, "job", jobs_.size() - 1, "running job index");
    r.remaining_s =
        engine::require_number(j, "remaining_s", kCheckpointContext);
    r.started_s = engine::require_number(j, "started_s", kCheckpointContext);
    r.carbon_g = engine::require_number(j, "carbon_g", kCheckpointContext);
    r.attempt_total_s =
        engine::require_number(j, "attempt_total_s", kCheckpointContext);
    cp.running.push_back(r);
  }

  const report::JsonValue& queue =
      engine::require_member(value, "queue", kCheckpointContext);
  check_arg(queue.is_array(), "queue checkpoint: queue must be an array");
  for (const report::JsonValue& j : queue.items()) {
    check_arg(j.is_number() && j.as_number() >= 0.0 &&
                  j.as_number() < static_cast<double>(jobs_.size()),
              "queue checkpoint: queued job index out of range");
    cp.queue.push_back(static_cast<std::size_t>(j.as_number()));
  }

  const report::JsonValue& outcomes =
      engine::require_member(value, "outcomes", kCheckpointContext);
  check_arg(outcomes.is_array(),
            "queue checkpoint: outcomes must be an array");
  for (const report::JsonValue& j : outcomes.items()) {
    check_arg(j.is_object(),
              "queue checkpoint: outcome entries must be objects");
    const std::size_t ji =
        require_index(j, "job", jobs_.size() - 1, "outcome job index");
    JobOutcome& out = cp.outcomes[ji];
    check_arg(!out.completed,
              "queue checkpoint: duplicate outcome for one job");
    out.completed = true;
    out.start_s = engine::require_number(j, "start_s", kCheckpointContext);
    out.finish_s = engine::require_number(j, "finish_s", kCheckpointContext);
    out.carbon_g = engine::require_number(j, "carbon_g", kCheckpointContext);
    ++cp.finished;
  }

  if (faults_enabled_) {
    const report::JsonValue& f =
        engine::require_member(value, "faults", kCheckpointContext);
    check_arg(f.is_object(), "queue checkpoint: faults must be an object");
    const auto lane = [&](const char* key) {
      const report::JsonValue& a =
          engine::require_member(f, key, kCheckpointContext);
      check_arg(a.is_array() && a.items().size() == jobs_.size(),
                std::string("queue checkpoint: faults.") + key +
                    " must be an array with one entry per job");
      std::vector<double> v;
      v.reserve(jobs_.size());
      for (const report::JsonValue& x : a.items()) {
        check_arg(x.is_number(),
                  std::string("queue checkpoint: faults.") + key +
                      " entries must be numbers");
        v.push_back(x.as_number());
      }
      return v;
    };
    cp.faults.preserved_s = lane("preserved_s");
    cp.faults.prior_carbon_g = lane("prior_carbon_g");
    cp.faults.earliest_restart_s = lane("earliest_restart_s");
    cp.faults.first_start_s = lane("first_start_s");
    const std::vector<double> counts = lane("preempt_count");
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cp.faults.preempt_count[i] = static_cast<int>(counts[i]);
    }
    fault::Accounting& acc = cp.faults.acc;
    acc.faults_injected =
        engine::require_integer(f, "faults_injected", kCheckpointContext);
    acc.recoveries =
        engine::require_integer(f, "recoveries", kCheckpointContext);
    acc.checkpoints =
        engine::require_integer(f, "checkpoints", kCheckpointContext);
    acc.redone_work_hours =
        engine::require_number(f, "redone_work_hours", kCheckpointContext);
    acc.lost_capacity_hours =
        engine::require_number(f, "lost_capacity_hours", kCheckpointContext);
    acc.wasted_energy =
        joules(engine::require_number(f, "wasted_energy_j", kCheckpointContext));
    acc.checkpoint_energy = joules(
        engine::require_number(f, "checkpoint_energy_j", kCheckpointContext));
  }
  return cp;
}

std::string QueueSim::config_digest() const {
  engine::ConfigDigest d;
  d.add_double(step_s_);
  d.add_long(config_.machines);
  d.add_double(config_.pue);
  d.add_double(config_.green_threshold.base());
  d.add_double(to_seconds(config_.max_horizon));
  d.add_long(static_cast<long>(policy_));
  d.add_string(IntensityCache::key_of(config_.grid, config_.step));
  digest_fault_spec(d, config_.faults);
  d.add_long(config_.faults.retry.max_retries);
  d.add_double(to_seconds(config_.faults.retry.base_backoff));
  d.add_double(config_.faults.retry.backoff_multiplier);
  for (const BatchJob& j : jobs_) {
    d.add_string(j.id);
    d.add_double(to_watts(j.power));
    d.add_double(to_seconds(j.duration));
    d.add_double(to_seconds(j.arrival));
    d.add_double(to_seconds(j.slack));
  }
  return d.hex();
}

QueueSimResult run_queue_sim(std::vector<BatchJob> jobs,
                             const QueueSimConfig& config, QueuePolicy policy) {
  QueueSim sim(std::move(jobs), config, policy);
  return sim.run();
}

}  // namespace sustainai::datacenter
