#include "datacenter/cluster.h"

#include "core/check.h"

namespace sustainai::datacenter {

const char* to_string(Tier tier) {
  switch (tier) {
    case Tier::kWeb:
      return "web";
    case Tier::kAiExperimentation:
      return "ai-experimentation";
    case Tier::kAiTraining:
      return "ai-training";
    case Tier::kAiInference:
      return "ai-inference";
    case Tier::kStorage:
      return "storage";
  }
  return "unknown";
}

void Cluster::add_group(ServerGroup group) {
  check_arg(group.count >= 0, "Cluster::add_group: count must be >= 0");
  groups_.push_back(std::move(group));
}

Power Cluster::peak_it_power() const {
  Power total = watts(0.0);
  for (const ServerGroup& g : groups_) {
    total += g.sku.peak_power() * static_cast<double>(g.count);
  }
  return total;
}

Power Cluster::peak_it_power(Tier tier) const {
  Power total = watts(0.0);
  for (const ServerGroup& g : groups_) {
    if (g.tier == tier) {
      total += g.sku.peak_power() * static_cast<double>(g.count);
    }
  }
  return total;
}

CarbonMass Cluster::embodied_total() const {
  CarbonMass total = grams_co2e(0.0);
  for (const ServerGroup& g : groups_) {
    total += g.sku.embodied_total() * static_cast<double>(g.count);
  }
  return total;
}

int Cluster::total_servers() const {
  int n = 0;
  for (const ServerGroup& g : groups_) {
    n += g.count;
  }
  return n;
}

}  // namespace sustainai::datacenter
