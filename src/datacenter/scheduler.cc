#include "datacenter/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sustainai::datacenter {
namespace {

// Carbon of running `job` starting at `start`, with the grid served through
// the shared per-grid cache (bit-identical to grid.mean_intensity).
CarbonMass job_carbon(const BatchJob& job, Duration start,
                      IntensityTable& table, double pue) {
  const CarbonIntensity mean = table.mean_intensity(start, job.duration);
  return (job.power * job.duration * pue) * mean;
}

// The shared table is keyed on the policy's probe grid; policies that do
// not probe (FIFO) still need a positive step for the table's index map.
IntensityTable make_policy_table(const IntermittentGrid& grid,
                                 const SchedulerPolicy& policy) {
  const Duration step = policy.probe_step();
  return IntensityTable(grid, seconds(0.0),
                        to_seconds(step) > 0.0 ? step : minutes(15.0));
}

// Max concurrent power over the schedule, evaluated at job start/end edges.
Power peak_power(const std::vector<ScheduledJob>& jobs) {
  Power peak = watts(0.0);
  for (const ScheduledJob& edge : jobs) {
    // Evaluate just after this job starts.
    const double t = to_seconds(edge.start) + 1e-6;
    Power concurrent = watts(0.0);
    for (const ScheduledJob& j : jobs) {
      const double s = to_seconds(j.start);
      const double e = s + to_seconds(j.job.duration);
      if (t >= s && t < e) {
        concurrent += j.job.power;
      }
    }
    peak = std::max(peak, concurrent);
  }
  return peak;
}

ScheduleResult summarize(std::string policy_name, std::vector<ScheduledJob> jobs) {
  ScheduleResult result;
  result.policy_name = std::move(policy_name);
  result.total_carbon = grams_co2e(0.0);
  double delay_s = 0.0;
  for (const ScheduledJob& j : jobs) {
    result.total_carbon += j.carbon;
    delay_s += to_seconds(j.delay());
  }
  result.mean_delay =
      seconds(jobs.empty() ? 0.0 : delay_s / static_cast<double>(jobs.size()));
  result.peak_concurrent_power = peak_power(jobs);
  result.jobs = std::move(jobs);
  return result;
}

}  // namespace

Duration FifoPolicy::choose_start(const BatchJob& job,
                                  const IntermittentGrid& /*grid*/) const {
  return job.arrival;
}

ThresholdPolicy::ThresholdPolicy(CarbonIntensity threshold, Duration probe_step)
    : threshold_(threshold), probe_step_(probe_step) {
  check_arg(to_seconds(probe_step_) > 0.0,
            "ThresholdPolicy: probe step must be positive");
}

Duration ThresholdPolicy::choose_start(const BatchJob& job,
                                       const IntermittentGrid& grid) const {
  IntensityTable table(grid, seconds(0.0), probe_step_);
  return choose_start(job, table);
}

Duration ThresholdPolicy::choose_start(const BatchJob& job,
                                       IntensityTable& table) const {
  const double slack_s = to_seconds(job.slack);
  Duration best = job.arrival;
  double best_intensity = std::numeric_limits<double>::infinity();
  for (double off = 0.0; off <= slack_s; off += to_seconds(probe_step_)) {
    const Duration t = job.arrival + seconds(off);
    const double intensity = table.intensity_at(t).base();
    if (intensity <= threshold_.base()) {
      return t;
    }
    if (intensity < best_intensity) {
      best_intensity = intensity;
      best = t;
    }
  }
  return best;
}

ForecastPolicy::ForecastPolicy(Duration probe_step) : probe_step_(probe_step) {
  check_arg(to_seconds(probe_step_) > 0.0,
            "ForecastPolicy: probe step must be positive");
}

Duration ForecastPolicy::choose_start(const BatchJob& job,
                                      const IntermittentGrid& grid) const {
  IntensityTable table(grid, seconds(0.0), probe_step_);
  return choose_start(job, table);
}

Duration ForecastPolicy::choose_start(const BatchJob& job,
                                      IntensityTable& table) const {
  const double slack_s = to_seconds(job.slack);
  Duration best = job.arrival;
  double best_mean = std::numeric_limits<double>::infinity();
  for (double off = 0.0; off <= slack_s; off += to_seconds(probe_step_)) {
    const Duration t = job.arrival + seconds(off);
    const double mean = table.mean_intensity(t, job.duration).base();
    if (mean < best_mean) {
      best_mean = mean;
      best = t;
    }
  }
  return best;
}

ScheduleResult run_schedule(const std::vector<BatchJob>& jobs,
                            const IntermittentGrid& grid,
                            const SchedulerPolicy& policy, double pue) {
  check_arg(pue >= 1.0, "run_schedule: PUE must be >= 1.0");
  IntensityTable table = make_policy_table(grid, policy);
  const std::string policy_name = policy.name();
  std::vector<ScheduledJob> scheduled;
  scheduled.reserve(jobs.size());
  for (std::size_t ji = 0; ji < jobs.size(); ++ji) {
    const BatchJob& job = jobs[ji];
    check_arg(to_seconds(job.duration) > 0.0,
              "run_schedule: job duration must be positive");
    check_arg(to_seconds(job.slack) >= 0.0,
              "run_schedule: job slack must be non-negative");
    const Duration start = policy.choose_start(job, table);
    check_arg(to_seconds(start) >= to_seconds(job.arrival) &&
                  to_seconds(start) <= to_seconds(job.arrival + job.slack),
              "run_schedule: policy chose a start outside the slack window");
    {
      // One deterministic lane per job, spanning its scheduled run window.
      obs::Span job_span("sched.job", to_seconds(start),
                         to_seconds(start + job.duration));
      job_span.set_track(obs::kUserTrackBase + ji);
      job_span.label("id", job.id);
      job_span.label("policy", policy_name);
    }
    scheduled.push_back(
        ScheduledJob{job, start, job_carbon(job, start, table, pue)});
  }
  ScheduleResult result = summarize(policy_name, std::move(scheduled));
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  const obs::Labels policy_labels{{"policy", policy_name}};
  metrics.counter("sched_carbon_grams", policy_labels)
      .add(to_grams_co2e(result.total_carbon));
  metrics.counter("sched_jobs", policy_labels)
      .add(static_cast<double>(result.jobs.size()));
  return result;
}

ScheduleResult run_cross_region_schedule(const std::vector<BatchJob>& jobs,
                                         const std::vector<IntermittentGrid>& grids,
                                         const SchedulerPolicy& policy,
                                         double pue) {
  check_arg(!grids.empty(), "run_cross_region_schedule: need at least one grid");
  std::vector<IntensityTable> tables;
  tables.reserve(grids.size());
  for (const IntermittentGrid& grid : grids) {
    tables.push_back(make_policy_table(grid, policy));
  }
  std::vector<ScheduledJob> scheduled;
  scheduled.reserve(jobs.size());
  for (const BatchJob& job : jobs) {
    ScheduledJob best{};
    double best_g = std::numeric_limits<double>::infinity();
    for (std::size_t gi = 0; gi < grids.size(); ++gi) {
      const IntermittentGrid& grid = grids[gi];
      const Duration start = policy.choose_start(job, tables[gi]);
      const CarbonMass carbon = job_carbon(job, start, tables[gi], pue);
      if (to_grams_co2e(carbon) < best_g) {
        best_g = to_grams_co2e(carbon);
        best = ScheduledJob{job, start, carbon};
        best.job.id = job.id + "@" + grid.profile().name;
      }
    }
    scheduled.push_back(std::move(best));
  }
  return summarize(policy.name() + "+cross-region", std::move(scheduled));
}

}  // namespace sustainai::datacenter
