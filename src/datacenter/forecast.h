// Carbon-intensity forecasting for scheduling (Section IV-C: schedulers
// must "predict and exploit the intermittent energy generation patterns").
//
// ForecastPolicy (scheduler.h) assumes perfect foresight. Real systems
// forecast; this header provides a day-ahead persistence forecaster
// (tomorrow looks like today — the standard baseline in grid forecasting)
// and a scheduling policy driven by it, so the value of forecast accuracy
// can be measured: perfect >= persistence >= FIFO.
#pragma once

#include "core/carbon_intensity.h"
#include "datacenter/scheduler.h"

namespace sustainai::datacenter {

// Day-ahead persistence forecast: predicted intensity at time t is the
// actual intensity at t - 24h (for t within the first day, the actual is
// used — the scheduler has observed "today" so far).
class PersistenceForecaster {
 public:
  explicit PersistenceForecaster(const IntermittentGrid& grid);
  // Cached variant: lagged lookups are served through `table` so repeated
  // probes over the same horizon evaluate each timestamp's harmonics once.
  // Bit-identical to the direct-grid forecaster.
  explicit PersistenceForecaster(IntensityTable& table);

  [[nodiscard]] CarbonIntensity predict(Duration t) const;
  // Mean predicted intensity over [start, start+window].
  [[nodiscard]] CarbonIntensity predict_mean(Duration start, Duration window,
                                             int steps = 64) const;

  // Mean absolute percentage error of the forecast over a horizon.
  [[nodiscard]] double mape(Duration start, Duration horizon,
                            Duration step = minutes(30.0)) const;

 private:
  [[nodiscard]] CarbonIntensity actual_at(Duration t) const;

  const IntermittentGrid& grid_;
  IntensityTable* table_ = nullptr;
};

// Forecast-driven slack scheduling using the persistence forecaster
// instead of ground truth.
class PersistenceForecastPolicy final : public SchedulerPolicy {
 public:
  explicit PersistenceForecastPolicy(Duration probe_step = minutes(15.0));
  [[nodiscard]] std::string name() const override { return "persistence-forecast"; }
  [[nodiscard]] Duration choose_start(const BatchJob& job,
                                      const IntermittentGrid& grid) const override;
  [[nodiscard]] Duration choose_start(const BatchJob& job,
                                      IntensityTable& table) const override;
  [[nodiscard]] Duration probe_step() const override { return probe_step_; }

 private:
  Duration probe_step_;
};

}  // namespace sustainai::datacenter
