// Cluster composition: groups of identical servers assigned to purposes.
//
// Models the fleet layout behind Figure 3a (power capacity split across
// Experimentation / Training / Inference) plus the non-AI web tier that
// Auto-Scaling harvests for opportunistic training (Section III-C).
#pragma once

#include <string>
#include <vector>

#include "core/lifecycle.h"
#include "core/units.h"
#include "datacenter/diurnal.h"
#include "hw/server.h"

namespace sustainai::datacenter {

// The role a server group plays in the fleet.
enum class Tier {
  kWeb,              // front-end / non-AI; autoscalable
  kAiExperimentation,
  kAiTraining,
  kAiInference,
  kStorage,          // data storage + ingestion pipeline
};

// Number of Tier values; sized for per-tier accumulator arrays.
inline constexpr std::size_t kNumTiers = 5;

[[nodiscard]] const char* to_string(Tier tier);

struct ServerGroup {
  std::string name;
  hw::ServerSku sku;
  int count = 0;
  Tier tier = Tier::kWeb;
  DiurnalProfile load;
  bool autoscalable = false;
};

class Cluster {
 public:
  Cluster() = default;

  void add_group(ServerGroup group);

  [[nodiscard]] const std::vector<ServerGroup>& groups() const { return groups_; }

  // Nameplate (all-servers-at-peak) IT power.
  [[nodiscard]] Power peak_it_power() const;

  // Peak IT power of all groups in `tier`.
  [[nodiscard]] Power peak_it_power(Tier tier) const;

  // Total manufacturing footprint of every server in the cluster.
  [[nodiscard]] CarbonMass embodied_total() const;

  [[nodiscard]] int total_servers() const;

 private:
  std::vector<ServerGroup> groups_;
};

}  // namespace sustainai::datacenter
