#include "datacenter/autoscaler.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sustainai::datacenter {

AutoScaler::AutoScaler(Config config) : config_(config) {
  check_arg(config_.target_utilization > 0.0 && config_.target_utilization <= 1.0,
            "AutoScaler: target_utilization must be in (0, 1]");
  check_arg(config_.max_freed_fraction >= 0.0 && config_.max_freed_fraction < 1.0,
            "AutoScaler: max_freed_fraction must be in [0, 1)");
  check_arg(config_.min_active_fraction > 0.0 && config_.min_active_fraction <= 1.0,
            "AutoScaler: min_active_fraction must be in (0, 1]");
}

AutoScaler::Decision AutoScaler::step(int total_servers,
                                      double demand_fraction) const {
  check_arg(total_servers >= 0, "AutoScaler::step: total_servers must be >= 0");
  check_arg(demand_fraction >= 0.0 && demand_fraction <= 1.0,
            "AutoScaler::step: demand_fraction must be in [0, 1]");
  Decision d;
  if (total_servers == 0) {
    return d;
  }
  // Servers needed so each active one runs at the target utilization.
  const double needed =
      demand_fraction * total_servers / config_.target_utilization;
  const int min_active = static_cast<int>(
      std::ceil(config_.min_active_fraction * total_servers));
  const int max_freed = static_cast<int>(
      std::floor(config_.max_freed_fraction * total_servers));
  int active = static_cast<int>(std::ceil(needed));
  active = std::max(active, min_active);
  active = std::max(active, total_servers - max_freed);
  active = std::min(active, total_servers);
  d.active_servers = active;
  d.freed_servers = total_servers - active;
  // The demand is concentrated on the active servers; cap at 1.0 (can only
  // exceed it transiently when min/max clamps bind).
  d.active_utilization =
      std::min(1.0, demand_fraction * total_servers / std::max(active, 1));
  return d;
}

}  // namespace sustainai::datacenter
