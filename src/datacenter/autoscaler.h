// Auto-Scaling of over-provisioned diurnal tiers (Section III-C).
//
// "Auto-Scaling frees the over-provisioned capacity during off-peak hours,
// by up to 25% of the web tier's machines ... providing opportunistic
// server capacity for others to use, including offline ML training."
//
// Given instantaneous demand (as a fraction of tier peak), the policy
// decides how many servers stay active — concentrating load to keep active
// servers near a target utilization — and how many are freed for
// opportunistic work, capped at `max_freed_fraction`.
#pragma once

namespace sustainai::datacenter {

class AutoScaler {
 public:
  struct Config {
    // Active servers aim to run at this utilization.
    double target_utilization = 0.75;
    // Never free more than this fraction of the tier (paper: up to 25%).
    double max_freed_fraction = 0.25;
    // Always keep this fraction active as failure headroom.
    double min_active_fraction = 0.50;
  };

  struct Decision {
    int active_servers = 0;
    int freed_servers = 0;
    // Utilization of each active server after load concentration.
    double active_utilization = 0.0;
  };

  explicit AutoScaler(Config config);

  // `demand_fraction` in [0,1]: tier-wide offered load relative to the load
  // the whole tier serves at full utilization.
  [[nodiscard]] Decision step(int total_servers, double demand_fraction) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace sustainai::datacenter
