// Time-stepped fleet energy/carbon simulation (Section III-C, Figure 3c).
//
// Steps a Cluster through a horizon: every group follows its diurnal load;
// autoscalable tiers are consolidated by the AutoScaler and their freed
// servers optionally run opportunistic offline training; IT energy is
// inflated by PUE and converted to carbon against a time-varying grid.
//
// The horizon is simulated in fixed time chunks executed in parallel on an
// exec::ThreadPool; per-chunk partial sums follow the per-lane accumulation
// contract of datacenter/fleet_kernels.h and are merged in chunk order, so
// the result is bit-identical at any thread count and for either step
// kernel (see exec/parallel.h and DESIGN.md).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/carbon_intensity.h"
#include "core/intensity_table.h"
#include "core/units.h"
#include "datacenter/autoscaler.h"
#include "datacenter/cluster.h"
#include "datacenter/fleet_kernels.h"
#include "engine/sharded_run.h"
#include "engine/snapshot.h"
#include "exec/thread_pool.h"
#include "fault/recovery.h"

namespace sustainai::datacenter {

class FleetSimulator {
 public:
  struct Config {
    Cluster cluster;
    double pue = 1.10;
    IntermittentGrid::Config grid;
    double cfe_coverage = 0.0;  // market-based renewable matching
    Duration step = minutes(15.0);
    Duration horizon = days(7.0);
    bool enable_autoscaler = true;
    AutoScaler::Config autoscaler;
    // Freed web-tier servers run offline training at this utilization.
    bool opportunistic_training = true;
    double opportunistic_utilization = 0.90;
    // Parallel execution: nullptr uses exec::ThreadPool::global(). Chunk
    // boundaries depend only on `steps_per_chunk` and the horizon, never on
    // the pool size, which is what keeps the parallel run deterministic.
    exec::ThreadPool* pool = nullptr;
    long steps_per_chunk = 256;
    // Serve per-step grid intensities from a prebuilt IntensityTable (one
    // harmonic pass over the horizon, built once at construction) instead
    // of evaluating intensity_at per step. Results are bit-identical either
    // way; the toggle exists so tests can prove it.
    bool use_intensity_table = true;
    // Step kernel (datacenter/fleet_kernels.h): the SoA + fixed-width SIMD
    // kernel by default, or the object-based reference kernel. Both follow
    // the same per-lane accumulation contract and produce byte-identical
    // results (tests/fleet_soa_test.cc); the toggle exists to prove it.
    StepKernel kernel = StepKernel::kSimd;
    // Fault injection (src/fault/): host crashes drop capacity while the
    // host re-warms, grid data gaps hold the last intensity reading, and
    // SDC events charge training-tier rollback waste. All-zero rates take
    // the fault-free code path untouched, so disabled runs are bit-exact
    // with builds that predate fault injection.
    fault::FaultSpec faults;
  };

  struct GroupResult {
    std::string name;
    Tier tier = Tier::kWeb;
    Energy it_energy;
    double mean_utilization = 0.0;   // time-weighted, active servers only
    double freed_server_hours = 0.0;
  };

  // Fault-injection outcomes; all-zero when faults are disabled.
  struct FaultStats {
    long host_crashes = 0;
    long sdc_events = 0;
    long grid_gaps = 0;
    long checkpoints = 0;
    double lost_server_hours = 0.0;    // capacity offline during outages
    double redone_work_hours = 0.0;    // training server-hours re-executed
    Energy wasted_energy;              // outage draw + redone training energy
    Energy checkpoint_energy;          // checkpoint overhead on training tier
    // SDC events per training-server-year observed over this horizon; feeds
    // mlcycle::optimal_age_with_detection's measured-rate overload.
    double measured_sdc_per_server_year = 0.0;
  };

  struct Result {
    std::vector<GroupResult> groups;
    Energy it_energy;
    Energy facility_energy;
    CarbonMass location_carbon;
    CarbonMass market_carbon;
    // Server-hours harvested for opportunistic training.
    double opportunistic_server_hours = 0.0;
    Energy opportunistic_energy;
    FaultStats faults;
    // O(1): served from per-tier sums precomputed when the chunk results
    // are merged, not by scanning `groups` per call.
    [[nodiscard]] Energy it_energy_for(Tier tier) const;

   private:
    friend class FleetSimulator;
    std::array<Energy, kNumTiers> tier_it_energy_{};
  };

  // Resumable run state: the single time-sharded accumulator after steps
  // [0, next_step), next_step always on a chunk boundary (or the horizon
  // end). Round-trips losslessly via checkpoint_json/parse_checkpoint.
  using Checkpoint = engine::ShardState<FleetPartial>;

  // Validates the config and eagerly builds all steady-run state: the grid,
  // the prebuilt intensity table, the autoscaler, the fault plan and its
  // per-step projections, and (for the SoA kernel) the structure-of-arrays
  // image of the cluster. run() is then pure lookup + arithmetic and can be
  // called repeatedly at steady cost.
  explicit FleetSimulator(Config config);

  // Non-copyable/movable: the intensity table holds a reference to the
  // simulator-owned grid.
  FleetSimulator(const FleetSimulator&) = delete;
  FleetSimulator& operator=(const FleetSimulator&) = delete;

  [[nodiscard]] long steps() const { return steps_; }
  // Chunk granule checkpoint boundaries round to (the configured
  // steps_per_chunk rounded up to a kStepLanes multiple).
  [[nodiscard]] long steps_per_chunk() const { return runner_.steps_per_chunk(); }

  // Fresh zeroed checkpoint at step 0.
  [[nodiscard]] Checkpoint start() const;
  // Advances `cp` by up to `max_steps` steps (rounded up to a chunk
  // boundary, clipped to the horizon), running time chunks in parallel and
  // merging them in ascending chunk order — segmented and whole runs are
  // byte-identical (tests/resume_test.cc).
  void advance(Checkpoint& cp, long max_steps) const;
  [[nodiscard]] bool done(const Checkpoint& cp) const {
    return cp.next_step >= steps_;
  }
  // Folds a completed checkpoint (next_step == steps()) into a Result.
  [[nodiscard]] Result finalize(const Checkpoint& cp) const;

  // start + advance(all) + finalize.
  [[nodiscard]] Result run() const;

  // Lossless JSON snapshot of a checkpoint (schema
  // "sustainai-fleet-checkpoint-v1"; see DESIGN.md §11). The embedded
  // config digest is checked on parse (engine::SnapshotDigestMismatch), so
  // a snapshot cannot resume a differently-configured fleet.
  [[nodiscard]] report::JsonValue checkpoint_json(const Checkpoint& cp) const;
  [[nodiscard]] Checkpoint parse_checkpoint(
      const report::JsonValue& value) const;

  // FNV-1a digest over every result-affecting config parameter.
  [[nodiscard]] std::string config_digest() const;

 private:
  Config config_;
  IntermittentGrid grid_;
  AutoScaler scaler_;
  double step_s_ = 0.0;
  long steps_ = 0;
  std::unique_ptr<IntensityTable> table_;  // null when !use_intensity_table
  FleetSoA soa_;                           // empty for the reference kernel
  bool faults_enabled_ = false;
  fault::FaultPlan plan_;
  FaultProjection projection_;
  std::vector<double> intensity_;  // per-step lane, gap-remapped
  double train_servers_ = 0.0;
  engine::ShardedRun<FleetPartial> runner_;
};

// Fill the event-derived half of `fs` from a fault plan: SDC rollback waste
// against the training tier, checkpoint overhead, and the measured SDC rate.
// The caller has already filled the chunk-accumulated half (lost hours,
// outage waste, event counts). Shared by FleetSimulator and PlanetSimulator
// so both account faults with the identical expression tree.
void finish_fault_stats(const fault::FaultPlan& plan,
                        const fault::FaultSpec& spec, Duration horizon,
                        double train_servers, Energy training_it_energy,
                        FleetSimulator::FaultStats& fs);

// Digest every result-affecting field of a cluster (group order, counts,
// tiers, load shapes, SKU power envelopes) / a fault spec (seed, rates,
// checkpoint policy) into `d`. One implementation, shared by every
// simulator's config_digest, so the field encodings can never drift apart.
void digest_cluster(engine::ConfigDigest& d, const Cluster& cluster);
void digest_fault_spec(engine::ConfigDigest& d, const fault::FaultSpec& spec);

}  // namespace sustainai::datacenter
