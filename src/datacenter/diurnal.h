// Diurnal load profiles (Section III-C: "server utilization exhibits a
// diurnal pattern", enabling Auto-Scaling to free off-peak capacity).
#pragma once

#include "core/units.h"

namespace sustainai::datacenter {

// Smooth day-night utilization curve: a raised cosine between `trough` at
// the anti-peak hour and `peak` at `peak_hour`.
struct DiurnalProfile {
  double trough = 0.4;     // minimum utilization (middle of the night)
  double peak = 0.9;       // maximum utilization (busiest hour)
  double peak_hour = 20.0; // local hour of the peak

  // Utilization in [trough, peak] at absolute time `t` (seconds from the
  // local midnight of day 0).
  [[nodiscard]] double utilization_at(Duration t) const;

  // 24h mean utilization of the profile.
  [[nodiscard]] double mean_utilization() const { return 0.5 * (trough + peak); }
};

// A flat profile (batch/training tiers whose load is scheduler-driven).
[[nodiscard]] DiurnalProfile flat_profile(double utilization);

}  // namespace sustainai::datacenter
