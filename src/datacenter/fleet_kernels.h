// Fixed-width step kernels for the fleet simulator.
//
// The per-step fleet math (diurnal demand -> autoscaling -> utilization ->
// power -> PUE -> grid carbon) is the widest hot path in the repo: it runs
// once per server group per step over horizons of years. This header
// provides two interchangeable kernels for that loop:
//
//   * StepKernel::kReference — the original object-based math (DiurnalProfile,
//     AutoScaler, ServerSku calls), step-outer / group-inner. The readable
//     specification.
//   * StepKernel::kSimd — structure-of-arrays state (per-group constants and
//     demand series as contiguous lanes) with the inner loop blocked into
//     kStepLanes-wide strips that the compiler vectorizes.
//
// Both produce byte-identical FleetPartials (tests/fleet_soa_test.cc) because
// they follow the same accumulation-order contract (DESIGN.md):
//
//   1. Every accumulated quantity is PER GROUP. Within an exec chunk [b, e),
//      step s contributes to logical lane (s - b) % kStepLanes of its group's
//      accumulator; each lane therefore sees its strided step subsequence in
//      ascending order regardless of loop interchange or physical SIMD width.
//   2. At the end of the chunk the lanes are reduced in ascending lane order:
//      ((l0 + l1) + l2) + l3.
//   3. Chunk partials merge in ascending chunk order (exec/parallel.h), and
//      fleet-level totals reduce from the per-group totals in ascending group
//      order, once, after the merge.
//
// The contract fixes the floating-point expression tree per step to the one
// the reference kernel evaluates (ServerSku::energy's tree with the SKU
// constants hoisted), so the SoA path is a pure reordering of independent
// accumulators — the same trick the recsys GEMM tiles use per (row, output).
#pragma once

#include <cstddef>
#include <vector>

#include "datacenter/autoscaler.h"
#include "datacenter/cluster.h"
#include "fault/plan.h"

namespace sustainai::datacenter {

// Logical lane width of the step kernels. This is a contract constant, not a
// machine property: results are defined in terms of kStepLanes accumulator
// lanes, so wider (or narrower) physical SIMD units must still maintain
// exactly these logical lanes to reproduce the same bytes.
inline constexpr int kStepLanes = 4;

enum class StepKernel {
  kReference,  // original object-based math, lane-contract accumulators
  kSimd,       // SoA + fixed-width vector strips (default)
};

// Per-group constants and precomputed series, AoS -> SoA. Built once per
// FleetSimulator (the demand series is the expensive part: one cosine per
// distinct second-of-day per group, served from a day-periodic slot cache).
struct FleetSoA {
  long steps = 0;
  double step_s = 0.0;
  std::size_t num_groups = 0;

  // Per-group server counts and hoisted ServerSku power coefficients
  // (host/accelerator idle watts and idle->TDP spans, accelerator count).
  std::vector<double> count;
  std::vector<double> host_idle_w;
  std::vector<double> host_span_w;
  std::vector<double> acc_idle_w;
  std::vector<double> acc_span_w;
  std::vector<double> acc_count;
  // Per-server step energies at fixed utilizations: idle (re-warming hosts)
  // and the opportunistic-training utilization (0 when harvesting is off).
  std::vector<double> idle_energy_j;
  std::vector<double> opp_energy_j;
  // AutoScaler integer bounds as exact integral doubles (full capacity; the
  // crash-aware path re-derives them from the surviving host count).
  std::vector<double> min_active;
  std::vector<double> max_freed;
  std::vector<unsigned char> autoscaled;  // autoscalable && enabled
  // 1.0 when opportunistic harvesting applies to this group, else 0.0; used
  // as an exact multiplicative mask (x * 1.0 == x, x * 0.0 == +0.0).
  std::vector<double> opp_mask;
  // Demand rows, demand[g * steps + s]: the diurnal utilization series per
  // group, bit-identical to DiurnalProfile::utilization_at at every step.
  std::vector<double> demand;

  double target_utilization = 0.75;
  double min_active_frac = 0.0;
  double max_freed_frac = 0.0;
};

// Precompute the SoA image of `cluster` for `steps` steps of `step_s`
// seconds. `opportunistic_utilization` parameterizes opp_energy_j.
[[nodiscard]] FleetSoA build_fleet_soa(const Cluster& cluster,
                                       const AutoScaler::Config& autoscaler,
                                       bool enable_autoscaler,
                                       bool opportunistic_training,
                                       double opportunistic_utilization,
                                       long steps, double step_s);

// Additive per-chunk partial sums, one slot per (quantity, group), flattened
// into a single buffer so a chunk allocates once and merge() is a plain
// elementwise add (which itself vectorizes).
class FleetPartial {
 public:
  FleetPartial() = default;
  explicit FleetPartial(std::size_t num_groups);

  [[nodiscard]] std::size_t num_groups() const { return num_groups_; }

  // Section accessors: contiguous per-group lanes.
  [[nodiscard]] double* group_energy_j() { return section(0); }
  [[nodiscard]] double* util_weight() { return section(1); }
  [[nodiscard]] double* freed_hours() { return section(2); }
  [[nodiscard]] double* opp_energy_j() { return section(3); }
  [[nodiscard]] double* opp_hours() { return section(4); }
  [[nodiscard]] double* location_g() { return section(5); }
  [[nodiscard]] double* fault_wasted_j() { return section(6); }
  [[nodiscard]] double* fault_lost_hours() { return section(7); }
  [[nodiscard]] const double* group_energy_j() const { return section(0); }
  [[nodiscard]] const double* util_weight() const { return section(1); }
  [[nodiscard]] const double* freed_hours() const { return section(2); }
  [[nodiscard]] const double* opp_energy_j() const { return section(3); }
  [[nodiscard]] const double* opp_hours() const { return section(4); }
  [[nodiscard]] const double* location_g() const { return section(5); }
  [[nodiscard]] const double* fault_wasted_j() const { return section(6); }
  [[nodiscard]] const double* fault_lost_hours() const { return section(7); }

  // Ascending-group reduction of one section (rule 3 of the contract).
  [[nodiscard]] double total(const double* section_ptr) const;

  // Chunk-order fold: elementwise add of the whole buffer.
  void merge(const FleetPartial& other);

  // Raw accumulator state, for checkpoint snapshots (planet_sim.h): the
  // kSections * num_groups flattened buffer, restorable bit-for-bit.
  [[nodiscard]] const std::vector<double>& buffer() const { return buf_; }
  void set_buffer(std::vector<double> buf);

  static constexpr std::size_t kSections = 8;

 private:
  [[nodiscard]] double* section(std::size_t q) {
    return buf_.data() + q * num_groups_;
  }
  [[nodiscard]] const double* section(std::size_t q) const {
    return buf_.data() + q * num_groups_;
  }

  std::size_t num_groups_ = 0;
  std::vector<double> buf_;
};

// Read-only inputs shared by every chunk of one run.
struct FleetStepInputs {
  const Cluster* cluster = nullptr;
  const AutoScaler* scaler = nullptr;
  const FleetSoA* soa = nullptr;  // required for StepKernel::kSimd
  bool enable_autoscaler = true;
  bool opportunistic_training = true;
  double opportunistic_utilization = 0.90;
  double pue = 1.0;
  double step_s = 0.0;
  // Per-step grid intensity (base units), gap-remap already applied.
  const double* intensity = nullptr;
  // down[g][s]: hosts of group g offline at step s; nullptr when no crashes.
  const std::vector<std::vector<int>>* down = nullptr;
};

// Simulate steps [begin, end) of one chunk under the lane contract.
[[nodiscard]] FleetPartial run_fleet_chunk(const FleetStepInputs& in,
                                           StepKernel kernel,
                                           std::size_t begin, std::size_t end);

// Per-step projections of a fault plan onto a fleet timeline, built serially
// before any parallel region so the chunk kernels only ever read them.
// Shared by FleetSimulator (one fleet) and PlanetSimulator (one per region).
struct FaultProjection {
  // down[g][s]: hosts of group g offline (crashed, re-warming) at step s.
  // Empty when the plan contains no host crashes.
  std::vector<std::vector<int>> down;
  // intensity_remap[s]: step index whose intensity step s reads. Identity
  // except during grid data gaps, which hold the last pre-gap reading.
  // Empty when the plan contains no gaps.
  std::vector<long> intensity_remap;

  [[nodiscard]] bool any_down() const { return !down.empty(); }
  [[nodiscard]] bool any_gap() const { return !intensity_remap.empty(); }
};

[[nodiscard]] FaultProjection project_faults(const fault::FaultPlan& plan,
                                             const Cluster& cluster,
                                             long steps, double step_s);

}  // namespace sustainai::datacenter
