#include "datacenter/fleet_sim.h"

#include "core/check.h"
#include "core/intensity_table.h"
#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sustainai::datacenter {

Energy FleetSimulator::Result::it_energy_for(Tier tier) const {
  const auto index = static_cast<std::size_t>(tier);
  check_arg(index < tier_it_energy_.size(), "it_energy_for: unknown tier");
  return tier_it_energy_[index];
}

FleetSimulator::FleetSimulator(Config config) : config_(std::move(config)) {
  check_arg(config_.pue >= 1.0, "FleetSimulator: PUE must be >= 1.0");
  check_arg(to_seconds(config_.step) > 0.0, "FleetSimulator: step must be positive");
  check_arg(to_seconds(config_.horizon) >= to_seconds(config_.step),
            "FleetSimulator: horizon must cover at least one step");
  check_arg(config_.opportunistic_utilization >= 0.0 &&
                config_.opportunistic_utilization <= 1.0,
            "FleetSimulator: opportunistic utilization must be in [0, 1]");
  check_arg(config_.steps_per_chunk >= 1,
            "FleetSimulator: steps_per_chunk must be >= 1");
}

namespace {

// Per-time-chunk accumulator. Each chunk owns one; the chunks are merged in
// chunk order so floating-point accumulation order never depends on the
// thread count.
struct Partial {
  std::vector<Energy> group_energy;
  std::vector<double> util_weight;
  std::vector<double> freed_server_hours;
  Energy it_energy = joules(0.0);
  Energy opportunistic_energy = joules(0.0);
  double opportunistic_server_hours = 0.0;
  double location_g = 0.0;

  explicit Partial(std::size_t num_groups = 0)
      : group_energy(num_groups, joules(0.0)),
        util_weight(num_groups, 0.0),
        freed_server_hours(num_groups, 0.0) {}
};

}  // namespace

FleetSimulator::Result FleetSimulator::run() const {
  const IntermittentGrid grid(config_.grid);
  const AutoScaler scaler(config_.autoscaler);
  const auto& groups = config_.cluster.groups();

  const double step_s = to_seconds(config_.step);
  const auto steps =
      static_cast<long>(to_seconds(config_.horizon) / step_s);

  obs::Span run_span("fleet.run", 0.0, step_s * static_cast<double>(steps));

  // One harmonic pass over the horizon up front; the per-step loops below
  // then read intensities in O(1). Prebuilding before the parallel region
  // keeps the table read-only (and therefore race-free) inside the chunks.
  IntensityTable table(grid, seconds(0.0), config_.step);
  if (config_.use_intensity_table) {
    table.prebuild(steps);
  }
  const IntensityTable& shared_table = table;

  auto simulate_chunk = [&](std::size_t begin, std::size_t end,
                            std::size_t) -> Partial {
    obs::Span chunk_span("fleet.chunk", step_s * static_cast<double>(begin),
                         step_s * static_cast<double>(end));
    Partial p(groups.size());
    for (std::size_t s = begin; s < end; ++s) {
      const Duration now = seconds(step_s * static_cast<double>(s));
      const CarbonIntensity intensity =
          config_.use_intensity_table
              ? shared_table.at_index(static_cast<long>(s))
              : grid.intensity_at(now);
      for (std::size_t i = 0; i < groups.size(); ++i) {
        const ServerGroup& g = groups[i];
        if (g.count == 0) {
          continue;
        }
        const double demand = g.load.utilization_at(now);
        Energy group_energy = joules(0.0);
        double recorded_util = demand;

        if (g.autoscalable && config_.enable_autoscaler) {
          const AutoScaler::Decision d = scaler.step(g.count, demand);
          group_energy =
              g.sku.energy(d.active_utilization, d.active_utilization,
                           config_.step) *
              static_cast<double>(d.active_servers);
          recorded_util = d.active_utilization;
          p.freed_server_hours[i] += d.freed_servers * step_s / kSecondsPerHour;
          if (config_.opportunistic_training && d.freed_servers > 0) {
            const Energy opp =
                g.sku.energy(config_.opportunistic_utilization,
                             config_.opportunistic_utilization, config_.step) *
                static_cast<double>(d.freed_servers);
            p.opportunistic_energy += opp;
            p.opportunistic_server_hours +=
                d.freed_servers * step_s / kSecondsPerHour;
            group_energy += opp;
          }
        } else {
          group_energy = g.sku.energy(demand, demand, config_.step) *
                         static_cast<double>(g.count);
        }

        p.group_energy[i] += group_energy;
        p.util_weight[i] += recorded_util;
        p.it_energy += group_energy;
        p.location_g += to_joules(group_energy * config_.pue) * intensity.base();
      }
    }
    return p;
  };

  auto merge = [&groups](Partial acc, Partial p) -> Partial {
    for (std::size_t i = 0; i < groups.size(); ++i) {
      acc.group_energy[i] += p.group_energy[i];
      acc.util_weight[i] += p.util_weight[i];
      acc.freed_server_hours[i] += p.freed_server_hours[i];
    }
    acc.it_energy += p.it_energy;
    acc.opportunistic_energy += p.opportunistic_energy;
    acc.opportunistic_server_hours += p.opportunistic_server_hours;
    acc.location_g += p.location_g;
    return acc;
  };

  exec::ParallelOptions options;
  options.pool = config_.pool;
  options.chunk_size = static_cast<std::size_t>(config_.steps_per_chunk);
  const Partial total =
      exec::parallel_reduce(static_cast<std::size_t>(steps),
                            Partial(groups.size()), simulate_chunk, merge,
                            options);

  Result result;
  result.groups.resize(groups.size());
  const double step_count = static_cast<double>(steps);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    result.groups[i].name = groups[i].name;
    result.groups[i].tier = groups[i].tier;
    result.groups[i].it_energy = total.group_energy[i];
    result.groups[i].freed_server_hours = total.freed_server_hours[i];
    result.groups[i].mean_utilization =
        step_count > 0.0 ? total.util_weight[i] / step_count : 0.0;
    // Per-tier sums accumulate in group order — the same order the old
    // per-call linear scan used, so it_energy_for is bit-compatible.
    result.tier_it_energy_[static_cast<std::size_t>(groups[i].tier)] +=
        total.group_energy[i];
  }
  result.it_energy = total.it_energy;
  result.opportunistic_energy = total.opportunistic_energy;
  result.opportunistic_server_hours = total.opportunistic_server_hours;
  result.facility_energy = result.it_energy * config_.pue;
  result.location_carbon = grams_co2e(total.location_g);
  result.market_carbon = market_based(result.location_carbon, config_.cfe_coverage);

  // Recorded post-merge on the calling thread, so the snapshot (and the
  // Prometheus text rendered from it) is deterministic at any thread count.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  for (std::size_t t = 0; t < result.tier_it_energy_.size(); ++t) {
    const Energy tier_energy = result.tier_it_energy_[t];
    if (to_joules(tier_energy) == 0.0) {
      continue;
    }
    metrics
        .counter("fleet_it_energy_joules",
                 {{"tier", to_string(static_cast<Tier>(t))}})
        .add(to_joules(tier_energy));
  }
  metrics.counter("fleet_facility_energy_joules")
      .add(to_joules(result.facility_energy));
  metrics.counter("fleet_location_carbon_grams")
      .add(to_grams_co2e(result.location_carbon));
  metrics.counter("fleet_opportunistic_server_hours")
      .add(result.opportunistic_server_hours);
  return result;
}

}  // namespace sustainai::datacenter
