#include "datacenter/fleet_sim.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/intensity_cache.h"
#include "exec/parallel.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sustainai::datacenter {

namespace {

constexpr const char* kCheckpointSchema = "sustainai-fleet-checkpoint-v1";

const char* fault_span_name(fault::FaultKind kind) {
  switch (kind) {
    case fault::FaultKind::kHostCrash:
      return "fault.host_crash";
    case fault::FaultKind::kJobPreemption:
      return "fault.job_preemption";
    case fault::FaultKind::kSilentCorruption:
      return "fault.silent_corruption";
    case fault::FaultKind::kGridDataGap:
      return "fault.grid_data_gap";
  }
  return "fault.unknown";
}

}  // namespace

Energy FleetSimulator::Result::it_energy_for(Tier tier) const {
  const auto index = static_cast<std::size_t>(tier);
  check_arg(index < tier_it_energy_.size(), "it_energy_for: unknown tier");
  return tier_it_energy_[index];
}

FleetSimulator::FleetSimulator(Config config)
    : config_(std::move(config)),
      grid_(config_.grid),
      scaler_(config_.autoscaler) {
  check_arg(config_.pue >= 1.0, "FleetSimulator: PUE must be >= 1.0");
  check_arg(to_seconds(config_.step) > 0.0, "FleetSimulator: step must be positive");
  check_arg(to_seconds(config_.horizon) >= to_seconds(config_.step),
            "FleetSimulator: horizon must cover at least one step");
  check_arg(config_.opportunistic_utilization >= 0.0 &&
                config_.opportunistic_utilization <= 1.0,
            "FleetSimulator: opportunistic utilization must be in [0, 1]");
  check_arg(config_.steps_per_chunk >= 1,
            "FleetSimulator: steps_per_chunk must be >= 1");

  step_s_ = to_seconds(config_.step);
  steps_ = static_cast<long>(to_seconds(config_.horizon) / step_s_);

  // All per-run invariants are built here, once: run() must never pay a
  // table, SoA, or fault-projection rebuild (that rebuild is exactly what
  // used to make the "optimized" table path lose to the direct one in the
  // benchmarks).
  if (config_.use_intensity_table) {
    table_ = std::make_unique<IntensityTable>(grid_, seconds(0.0), config_.step);
    table_->prebuild(steps_);
  }
  if (config_.kernel == StepKernel::kSimd) {
    soa_ = build_fleet_soa(config_.cluster, config_.autoscaler,
                           config_.enable_autoscaler,
                           config_.opportunistic_training,
                           config_.opportunistic_utilization, steps_, step_s_);
  }

  // Fault plan and its per-step projections, built serially up front — like
  // the intensity table — so the parallel chunks only ever read them.
  faults_enabled_ = config_.faults.enabled();
  plan_ = faults_enabled_ ? config_.faults.plan(config_.horizon)
                          : fault::FaultPlan();
  projection_ = project_faults(plan_, config_.cluster, steps_, step_s_);
  const bool any_gap = projection_.any_gap();

  // Per-step intensity lane, hoisted out of the kernels entirely: the chunk
  // loops index a contiguous double array instead of calling through the
  // table (or the harmonic evaluation) per step per group.
  intensity_.assign(static_cast<std::size_t>(steps_), 0.0);
  for (long s = 0; s < steps_; ++s) {
    const long index =
        any_gap ? projection_.intensity_remap[static_cast<std::size_t>(s)] : s;
    intensity_[static_cast<std::size_t>(s)] =
        table_ ? table_->at_index(index).base()
               : grid_
                     .intensity_at(
                         seconds(step_s_ * static_cast<double>(index)))
                     .base();
  }

  for (const ServerGroup& g : config_.cluster.groups()) {
    if (g.tier == Tier::kAiTraining) {
      train_servers_ += static_cast<double>(g.count);
    }
  }

  engine::ShardedRun<FleetPartial>::Config rcfg;
  rcfg.steps = steps_;
  rcfg.steps_per_chunk = config_.steps_per_chunk;
  // Interior chunk boundaries stay on lane-block multiples, so every chunk
  // fills its lanes in the same pattern regardless of where it starts.
  rcfg.chunk_align = kStepLanes;
  rcfg.shards = 1;
  rcfg.pool = config_.pool;
  rcfg.topology = engine::ShardedRun<FleetPartial>::Topology::kChunkMajor;
  rcfg.step_seconds = step_s_;
  rcfg.context = "fleet checkpoint";
  rcfg.segment_span = "fleet.segment";
  runner_ = engine::ShardedRun<FleetPartial>(rcfg);
}

FleetSimulator::Checkpoint FleetSimulator::start() const {
  Checkpoint cp;
  cp.shards.emplace_back(config_.cluster.groups().size());
  return cp;
}

void FleetSimulator::advance(Checkpoint& cp, long max_steps) const {
  FleetStepInputs inputs;
  inputs.cluster = &config_.cluster;
  inputs.scaler = &scaler_;
  inputs.soa = config_.kernel == StepKernel::kSimd ? &soa_ : nullptr;
  inputs.enable_autoscaler = config_.enable_autoscaler;
  inputs.opportunistic_training = config_.opportunistic_training;
  inputs.opportunistic_utilization = config_.opportunistic_utilization;
  inputs.pue = config_.pue;
  inputs.step_s = step_s_;
  inputs.intensity = intensity_.data();
  inputs.down = projection_.any_down() ? &projection_.down : nullptr;

  runner_.advance(cp.next_step, cp.shards, max_steps,
                  [&](std::size_t, long begin, long end) -> FleetPartial {
                    obs::Span chunk_span(
                        "fleet.chunk", step_s_ * static_cast<double>(begin),
                        step_s_ * static_cast<double>(end));
                    return run_fleet_chunk(inputs, config_.kernel,
                                           static_cast<std::size_t>(begin),
                                           static_cast<std::size_t>(end));
                  });
}

FleetSimulator::Result FleetSimulator::finalize(const Checkpoint& cp) const {
  check_arg(cp.next_step == steps_,
            "FleetSimulator::finalize: checkpoint has not reached the horizon");
  check_arg(cp.shards.size() == 1,
            "FleetSimulator::finalize: checkpoint shard count mismatch");
  const auto& groups = config_.cluster.groups();
  const FleetPartial& total = cp.shards[0];

  Result result;
  result.groups.resize(groups.size());
  const double step_count = static_cast<double>(steps_);
  const double* group_energy = total.group_energy_j();
  for (std::size_t i = 0; i < groups.size(); ++i) {
    result.groups[i].name = groups[i].name;
    result.groups[i].tier = groups[i].tier;
    result.groups[i].it_energy = joules(group_energy[i]);
    result.groups[i].freed_server_hours = total.freed_hours()[i];
    result.groups[i].mean_utilization =
        step_count > 0.0 ? total.util_weight()[i] / step_count : 0.0;
    // Per-tier sums accumulate in group order — the same order the old
    // per-call linear scan used, so it_energy_for is bit-compatible.
    result.tier_it_energy_[static_cast<std::size_t>(groups[i].tier)] +=
        joules(group_energy[i]);
  }
  // Fleet totals reduce from the per-group totals in ascending group order
  // (rule 3 of the lane contract in datacenter/fleet_kernels.h).
  result.it_energy = joules(total.total(group_energy));
  result.opportunistic_energy = joules(total.total(total.opp_energy_j()));
  result.opportunistic_server_hours = total.total(total.opp_hours());
  result.facility_energy = result.it_energy * config_.pue;
  result.location_carbon = grams_co2e(total.total(total.location_g()));
  result.market_carbon = market_based(result.location_carbon, config_.cfe_coverage);

  if (faults_enabled_) {
    FaultStats& fs = result.faults;
    fs.host_crashes = plan_.count(fault::FaultKind::kHostCrash);
    fs.grid_gaps = plan_.count(fault::FaultKind::kGridDataGap);
    fs.lost_server_hours = total.total(total.fault_lost_hours());
    fs.wasted_energy = joules(total.total(total.fault_wasted_j()));
    finish_fault_stats(plan_, config_.faults, config_.horizon, train_servers_,
                       result.it_energy_for(Tier::kAiTraining), fs);
    // One span per fault event, on a deterministic per-event lane; emitted
    // serially post-merge so the trace stays byte-identical at any thread
    // count.
    std::uint64_t lane = 0;
    for (const fault::FaultEvent& e : plan_.events()) {
      obs::Span span(fault_span_name(e.kind), to_seconds(e.time),
                     to_seconds(e.time) +
                         std::max(to_seconds(e.duration), step_s_));
      span.set_track(obs::kUserTrackBase + lane++);
    }
  }

  // Recorded post-merge on the calling thread, so the snapshot (and the
  // Prometheus text rendered from it) is deterministic at any thread count.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  for (std::size_t t = 0; t < result.tier_it_energy_.size(); ++t) {
    const Energy tier_energy = result.tier_it_energy_[t];
    if (to_joules(tier_energy) == 0.0) {
      continue;
    }
    metrics
        .counter("fleet_it_energy_joules",
                 {{"tier", to_string(static_cast<Tier>(t))}})
        .add(to_joules(tier_energy));
  }
  metrics.counter("fleet_facility_energy_joules")
      .add(to_joules(result.facility_energy));
  metrics.counter("fleet_location_carbon_grams")
      .add(to_grams_co2e(result.location_carbon));
  metrics.counter("fleet_opportunistic_server_hours")
      .add(result.opportunistic_server_hours);
  if (faults_enabled_) {
    const FaultStats& fs = result.faults;
    metrics.counter("fleet_fault_events_total", {{"kind", "host_crash"}})
        .add(static_cast<double>(fs.host_crashes));
    metrics.counter("fleet_fault_events_total", {{"kind", "silent_corruption"}})
        .add(static_cast<double>(fs.sdc_events));
    metrics.counter("fleet_fault_events_total", {{"kind", "grid_data_gap"}})
        .add(static_cast<double>(fs.grid_gaps));
    metrics.counter("fleet_fault_wasted_energy_joules")
        .add(to_joules(fs.wasted_energy));
    metrics.counter("fleet_fault_lost_server_hours").add(fs.lost_server_hours);
    metrics.counter("fleet_fault_redone_work_hours").add(fs.redone_work_hours);
    metrics.counter("fleet_fault_checkpoint_energy_joules")
        .add(to_joules(fs.checkpoint_energy));
  }
  return result;
}

FleetSimulator::Result FleetSimulator::run() const {
  obs::Span run_span("fleet.run", 0.0, step_s_ * static_cast<double>(steps_));
  Checkpoint cp = start();
  advance(cp, steps_);
  return finalize(cp);
}

report::JsonValue FleetSimulator::checkpoint_json(const Checkpoint& cp) const {
  return runner_.state_json(cp.next_step, cp.shards, kCheckpointSchema,
                            config_digest(), "shards");
}

FleetSimulator::Checkpoint FleetSimulator::parse_checkpoint(
    const report::JsonValue& value) const {
  return runner_.parse_state(value, kCheckpointSchema, config_digest(),
                             "shards", [this](std::size_t) {
                               return FleetPartial(
                                   config_.cluster.groups().size());
                             });
}

std::string FleetSimulator::config_digest() const {
  engine::ConfigDigest d;
  d.add_double(step_s_);
  d.add_long(steps_);
  d.add_long(runner_.steps_per_chunk());
  d.add_long(static_cast<long>(config_.kernel));
  d.add_long(config_.enable_autoscaler ? 1 : 0);
  d.add_long(config_.opportunistic_training ? 1 : 0);
  d.add_double(config_.opportunistic_utilization);
  d.add_double(config_.autoscaler.target_utilization);
  d.add_double(config_.autoscaler.min_active_fraction);
  d.add_double(config_.autoscaler.max_freed_fraction);
  d.add_double(config_.pue);
  d.add_double(config_.cfe_coverage);
  d.add_string(IntensityCache::key_of(config_.grid, config_.step));
  digest_fault_spec(d, config_.faults);
  digest_cluster(d, config_.cluster);
  return d.hex();
}

void finish_fault_stats(const fault::FaultPlan& plan,
                        const fault::FaultSpec& spec, Duration horizon,
                        double train_servers, Energy training_it_energy,
                        FleetSimulator::FaultStats& fs) {
  // SDC rollbacks hit the training tier: deterministic replay from the
  // last checkpoint reproduces the same weights, so the cost is pure
  // accounting — the redone server-hours and the energy they burned —
  // rather than a dynamics change.
  const double horizon_s = to_seconds(horizon);
  const double avg_train_w =
      horizon_s > 0.0 ? to_joules(training_it_energy) / horizon_s : 0.0;
  for (const fault::FaultEvent& e :
       plan.events_of(fault::FaultKind::kSilentCorruption)) {
    ++fs.sdc_events;
    const double lost_s = to_seconds(spec.checkpoint.lost_work(e.time));
    fs.redone_work_hours += lost_s / kSecondsPerHour * train_servers;
    fs.wasted_energy += joules(avg_train_w * lost_s);
  }
  fs.checkpoints = spec.checkpoint.checkpoints_over(horizon);
  fs.checkpoint_energy =
      joules(avg_train_w * to_seconds(spec.checkpoint.cost) *
             static_cast<double>(fs.checkpoints));
  const double horizon_years = horizon_s / kSecondsPerYear;
  fs.measured_sdc_per_server_year =
      train_servers > 0.0 && horizon_years > 0.0
          ? static_cast<double>(fs.sdc_events) / (train_servers * horizon_years)
          : 0.0;
}

void digest_cluster(engine::ConfigDigest& d, const Cluster& cluster) {
  for (const ServerGroup& g : cluster.groups()) {
    d.add_string(g.name);
    d.add_long(g.count);
    d.add_long(static_cast<long>(g.tier));
    d.add_long(g.autoscalable ? 1 : 0);
    d.add_double(g.load.trough);
    d.add_double(g.load.peak);
    d.add_double(g.load.peak_hour);
    d.add_string(g.sku.name());
    d.add_double(to_watts(g.sku.host().tdp));
    d.add_double(g.sku.host().idle_fraction);
    d.add_double(to_watts(g.sku.accelerator().tdp));
    d.add_double(g.sku.accelerator().idle_fraction);
    d.add_long(g.sku.accelerator_count());
  }
}

void digest_fault_spec(engine::ConfigDigest& d, const fault::FaultSpec& spec) {
  d.add_string(std::to_string(spec.seed));
  d.add_double(spec.rates.host_crash_per_day);
  d.add_double(spec.rates.preemption_per_day);
  d.add_double(spec.rates.sdc_per_day);
  d.add_double(spec.rates.grid_gap_per_day);
  d.add_double(to_seconds(spec.rates.crash_rewarm));
  d.add_double(to_seconds(spec.rates.gap_duration));
  d.add_double(to_seconds(spec.checkpoint.interval));
  d.add_double(to_seconds(spec.checkpoint.cost));
}

}  // namespace sustainai::datacenter
