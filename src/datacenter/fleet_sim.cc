#include "datacenter/fleet_sim.h"

#include "core/check.h"

namespace sustainai::datacenter {

Energy FleetSimulator::Result::it_energy_for(Tier tier) const {
  Energy sum = joules(0.0);
  for (const GroupResult& g : groups) {
    if (g.tier == tier) {
      sum += g.it_energy;
    }
  }
  return sum;
}

FleetSimulator::FleetSimulator(Config config) : config_(std::move(config)) {
  check_arg(config_.pue >= 1.0, "FleetSimulator: PUE must be >= 1.0");
  check_arg(to_seconds(config_.step) > 0.0, "FleetSimulator: step must be positive");
  check_arg(to_seconds(config_.horizon) >= to_seconds(config_.step),
            "FleetSimulator: horizon must cover at least one step");
  check_arg(config_.opportunistic_utilization >= 0.0 &&
                config_.opportunistic_utilization <= 1.0,
            "FleetSimulator: opportunistic utilization must be in [0, 1]");
}

FleetSimulator::Result FleetSimulator::run() const {
  const IntermittentGrid grid(config_.grid);
  const AutoScaler scaler(config_.autoscaler);
  const auto& groups = config_.cluster.groups();

  Result result;
  result.it_energy = joules(0.0);
  result.opportunistic_energy = joules(0.0);
  result.groups.resize(groups.size());
  std::vector<double> util_weight(groups.size(), 0.0);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    result.groups[i].name = groups[i].name;
    result.groups[i].tier = groups[i].tier;
    result.groups[i].it_energy = joules(0.0);
  }

  double location_g = 0.0;
  const double step_s = to_seconds(config_.step);
  const auto steps =
      static_cast<long>(to_seconds(config_.horizon) / step_s);
  double step_count = 0.0;

  for (long s = 0; s < steps; ++s) {
    const Duration now = seconds(step_s * static_cast<double>(s));
    const CarbonIntensity intensity = grid.intensity_at(now);
    for (std::size_t i = 0; i < groups.size(); ++i) {
      const ServerGroup& g = groups[i];
      if (g.count == 0) {
        continue;
      }
      const double demand = g.load.utilization_at(now);
      Energy group_energy = joules(0.0);
      double recorded_util = demand;

      if (g.autoscalable && config_.enable_autoscaler) {
        const AutoScaler::Decision d = scaler.step(g.count, demand);
        group_energy =
            g.sku.energy(d.active_utilization, d.active_utilization,
                         config_.step) *
            static_cast<double>(d.active_servers);
        recorded_util = d.active_utilization;
        result.groups[i].freed_server_hours +=
            d.freed_servers * step_s / kSecondsPerHour;
        if (config_.opportunistic_training && d.freed_servers > 0) {
          const Energy opp =
              g.sku.energy(config_.opportunistic_utilization,
                           config_.opportunistic_utilization, config_.step) *
              static_cast<double>(d.freed_servers);
          result.opportunistic_energy += opp;
          result.opportunistic_server_hours +=
              d.freed_servers * step_s / kSecondsPerHour;
          group_energy += opp;
        }
      } else {
        group_energy = g.sku.energy(demand, demand, config_.step) *
                       static_cast<double>(g.count);
      }

      result.groups[i].it_energy += group_energy;
      util_weight[i] += recorded_util;
      result.it_energy += group_energy;
      location_g += to_joules(group_energy * config_.pue) * intensity.base();
    }
    step_count += 1.0;
  }

  for (std::size_t i = 0; i < groups.size(); ++i) {
    result.groups[i].mean_utilization =
        step_count > 0.0 ? util_weight[i] / step_count : 0.0;
  }
  result.facility_energy = result.it_energy * config_.pue;
  result.location_carbon = grams_co2e(location_g);
  result.market_carbon = market_based(result.location_carbon, config_.cfe_coverage);
  return result;
}

}  // namespace sustainai::datacenter
