// Weather-dependent cooling and PUE (Section III-C).
//
// "Achieving a Power Usage Effectiveness (PUE) of about 1.10, Facebook's
// data centers are about 40% more efficient than small-scale, typical data
// centers." Hyperscale facilities reach that figure with free-air
// (economizer) cooling whose overhead depends on outside temperature; the
// model below exposes PUE as a function of weather so fleet simulations and
// schedulers can see seasonal/diurnal cooling effects.
#pragma once

#include "core/units.h"

namespace sustainai::datacenter {

// Sinusoidal climate: seasonal cycle plus a diurnal cycle on top.
struct ClimateModel {
  double mean_celsius = 12.0;
  double seasonal_amplitude = 10.0;  // +- around the mean over the year
  double diurnal_amplitude = 5.0;    // +- around the day's mean
  double hottest_hour = 15.0;        // local hour of the daily peak
  double hottest_day_of_year = 200.0;

  // Outside temperature at absolute time `t` (t = 0 is midnight, Jan 1).
  [[nodiscard]] double temperature_at(Duration t) const;
};

// Economizer cooling curve: below `free_cooling_celsius` the facility runs
// on outside air at `base_pue`; above it, mechanical chillers add overhead
// proportional to the excess temperature, clamped at `max_pue`.
struct CoolingModel {
  double base_pue = 1.08;
  double free_cooling_celsius = 18.0;
  double pue_per_excess_celsius = 0.02;
  double max_pue = 1.60;

  [[nodiscard]] double pue_at_temperature(double celsius) const;
  [[nodiscard]] double pue_at(const ClimateModel& climate, Duration t) const;

  // Time-averaged PUE over [start, start + window] at `steps` resolution.
  [[nodiscard]] double mean_pue(const ClimateModel& climate, Duration start,
                                Duration window, int steps = 512) const;
};

// Facility energy for an IT load profile under weather-dependent PUE,
// integrated at `step` resolution.
[[nodiscard]] Energy facility_energy_over(const CoolingModel& cooling,
                                          const ClimateModel& climate,
                                          Power it_load, Duration start,
                                          Duration window,
                                          Duration step = hours(1.0));

// Reference climates for siting studies.
namespace climates {
ClimateModel nordic();      // cool: free cooling nearly year-round
ClimateModel temperate();   // mixed
ClimateModel hot_desert();  // chiller-bound summers
}  // namespace climates

}  // namespace sustainai::datacenter
