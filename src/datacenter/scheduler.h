// Carbon-aware batch scheduling (Section IV-C).
//
// "Elastic carbon-aware workload scheduling techniques can be used in and
// across datacenters to predict and exploit the intermittent energy
// generation patterns." Deferrable batch jobs (offline training) may slide
// within a slack window; policies trade completion delay and capacity
// over-provisioning for lower carbon.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/carbon_intensity.h"
#include "core/intensity_table.h"
#include "core/units.h"

namespace sustainai::datacenter {

// A deferrable batch job (e.g. an offline training workflow).
struct BatchJob {
  std::string id;
  Power power;        // average draw while running
  Duration duration;  // non-preemptible run length
  Duration arrival;   // earliest possible start
  Duration slack;     // start may be delayed by at most this much
};

struct ScheduledJob {
  BatchJob job;
  Duration start;
  CarbonMass carbon;  // operational carbon of the run
  [[nodiscard]] Duration delay() const { return start - job.arrival; }
};

struct ScheduleResult {
  std::string policy_name;
  std::vector<ScheduledJob> jobs;
  CarbonMass total_carbon;
  Duration mean_delay;
  // Max concurrent power across the horizon: the over-provisioning a policy
  // demands (the paper notes carbon-aware shifting "might require server
  // over-provisioning").
  Power peak_concurrent_power;
};

// A policy picks each job's start time inside [arrival, arrival + slack].
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Duration choose_start(const BatchJob& job,
                                              const IntermittentGrid& grid) const = 0;
  // Cached variant: run_schedule passes one IntensityTable per grid, shared
  // across every job, so probes that revisit a timestamp (jobs arriving on
  // the same probe grid) reuse the harmonic evaluation. Bit-identical to the
  // direct overload; the default simply ignores the cache.
  [[nodiscard]] virtual Duration choose_start(const BatchJob& job,
                                              IntensityTable& table) const {
    return choose_start(job, table.grid());
  }
  // Step of the policy's probe grid; run_schedule keys the shared table on
  // it. Zero means the policy does not probe (e.g. FIFO).
  [[nodiscard]] virtual Duration probe_step() const { return seconds(0.0); }
};

// Baseline: run immediately on arrival (carbon-oblivious FIFO).
class FifoPolicy final : public SchedulerPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "fifo"; }
  [[nodiscard]] Duration choose_start(const BatchJob& job,
                                      const IntermittentGrid& grid) const override;
};

// Starts at the first probe time whose instantaneous intensity is below
// `threshold`; falls back to the lowest-intensity probe if none qualifies.
class ThresholdPolicy final : public SchedulerPolicy {
 public:
  ThresholdPolicy(CarbonIntensity threshold, Duration probe_step = minutes(15.0));
  [[nodiscard]] std::string name() const override { return "threshold"; }
  [[nodiscard]] Duration choose_start(const BatchJob& job,
                                      const IntermittentGrid& grid) const override;
  [[nodiscard]] Duration choose_start(const BatchJob& job,
                                      IntensityTable& table) const override;
  [[nodiscard]] Duration probe_step() const override { return probe_step_; }

 private:
  CarbonIntensity threshold_;
  Duration probe_step_;
};

// Minimizes the forecast mean intensity over the job's own run window.
class ForecastPolicy final : public SchedulerPolicy {
 public:
  explicit ForecastPolicy(Duration probe_step = minutes(15.0));
  [[nodiscard]] std::string name() const override { return "forecast"; }
  [[nodiscard]] Duration choose_start(const BatchJob& job,
                                      const IntermittentGrid& grid) const override;
  [[nodiscard]] Duration choose_start(const BatchJob& job,
                                      IntensityTable& table) const override;
  [[nodiscard]] Duration probe_step() const override { return probe_step_; }

 private:
  Duration probe_step_;
};

// Runs `policy` over all jobs against `grid` and accounts carbon with the
// grid's time-varying intensity (PUE applied via `pue`).
[[nodiscard]] ScheduleResult run_schedule(const std::vector<BatchJob>& jobs,
                                          const IntermittentGrid& grid,
                                          const SchedulerPolicy& policy,
                                          double pue = 1.10);

// Cross-region extension: given several candidate grids, charges each job
// in the region (and at the time) minimizing its carbon; returns one
// ScheduleResult per region plus the overall total via `total_carbon` of
// the first element's aggregate. Jobs are annotated region:<name>.
[[nodiscard]] ScheduleResult run_cross_region_schedule(
    const std::vector<BatchJob>& jobs,
    const std::vector<IntermittentGrid>& grids, const SchedulerPolicy& policy,
    double pue = 1.10);

}  // namespace sustainai::datacenter
