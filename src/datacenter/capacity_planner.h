// Capacity planning under demand growth and hardware-efficiency roadmaps
// (Figures 2d and 8 connected).
//
// Demand for AI compute grows every half-year; hardware bought later is
// more efficient (performance per watt per dollar per kg of embodied
// carbon improves each generation). The planner decides how many servers
// to buy each period to meet demand, and accounts both the embodied carbon
// of purchases and the fleet's operational carbon — letting us quantify
// "buy early vs just-in-time" and the carbon value of efficiency roadmaps.
#pragma once

#include <vector>

#include "core/carbon_intensity.h"
#include "core/units.h"

namespace sustainai::datacenter {

struct CapacityPlanConfig {
  // Normalized compute demand per half-year; index 0 is "now".
  std::vector<double> demand_per_period = {1.0, 1.2, 1.5, 1.9, 2.4, 2.9};
  // Compute throughput of a server bought in period p relative to period 0.
  double efficiency_growth_per_period = 1.10;
  // A period-0 server: power draw, embodied carbon, service life (periods).
  Power server_power = kilowatts(2.8);
  CarbonMass server_embodied = kg_co2e(5600.0);
  int server_life_periods = 8;  // 4 years of half-year periods
  // Power stays ~constant across generations (perf/W improves instead).
  GridProfile grid;
  double pue = 1.10;
  Duration period = days(182.625);
};

struct PeriodPlan {
  int period = 0;
  int servers_bought = 0;
  int fleet_size = 0;          // servers in service
  double capacity = 0.0;       // normalized compute the fleet can deliver
  double demand = 0.0;
  CarbonMass embodied_purchased;
  CarbonMass operational;
};

struct CapacityPlanResult {
  std::vector<PeriodPlan> periods;
  CarbonMass total_embodied;
  CarbonMass total_operational;
  [[nodiscard]] CarbonMass total() const {
    return total_embodied + total_operational;
  }
};

// Just-in-time planner: each period, buy the fewest current-generation
// servers needed to cover demand (retiring servers past their life).
[[nodiscard]] CapacityPlanResult plan_just_in_time(const CapacityPlanConfig& config);

// Buy-ahead planner: purchase in period 0 the whole fleet needed for the
// final period's demand (at period-0 efficiency). The contrast shows why
// deferring purchases to newer generations saves both embodied and
// operational carbon.
[[nodiscard]] CapacityPlanResult plan_buy_ahead(const CapacityPlanConfig& config);

}  // namespace sustainai::datacenter
