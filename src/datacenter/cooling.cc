#include "datacenter/cooling.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sustainai::datacenter {

double ClimateModel::temperature_at(Duration t) const {
  const double day_of_year =
      std::fmod(to_seconds(t), kSecondsPerYear) / kSecondsPerDay;
  const double hour = std::fmod(to_seconds(t), kSecondsPerDay) / kSecondsPerHour;
  const double seasonal =
      seasonal_amplitude *
      std::cos(2.0 * M_PI * (day_of_year - hottest_day_of_year) / 365.25);
  const double diurnal =
      diurnal_amplitude * std::cos(2.0 * M_PI * (hour - hottest_hour) / 24.0);
  return mean_celsius + seasonal + diurnal;
}

double CoolingModel::pue_at_temperature(double celsius) const {
  check_arg(base_pue >= 1.0, "CoolingModel: base PUE must be >= 1.0");
  check_arg(max_pue >= base_pue, "CoolingModel: max PUE must be >= base");
  if (celsius <= free_cooling_celsius) {
    return base_pue;
  }
  const double pue =
      base_pue + pue_per_excess_celsius * (celsius - free_cooling_celsius);
  return std::min(pue, max_pue);
}

double CoolingModel::pue_at(const ClimateModel& climate, Duration t) const {
  return pue_at_temperature(climate.temperature_at(t));
}

double CoolingModel::mean_pue(const ClimateModel& climate, Duration start,
                              Duration window, int steps) const {
  check_arg(steps >= 1, "mean_pue: steps must be >= 1");
  check_arg(to_seconds(window) > 0.0, "mean_pue: window must be positive");
  double sum = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const Duration t = start + window * (static_cast<double>(i) / steps);
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    sum += w * pue_at(climate, t);
  }
  return sum / steps;
}

Energy facility_energy_over(const CoolingModel& cooling,
                            const ClimateModel& climate, Power it_load,
                            Duration start, Duration window, Duration step) {
  check_arg(to_watts(it_load) >= 0.0,
            "facility_energy_over: load must be >= 0");
  check_arg(to_seconds(step) > 0.0, "facility_energy_over: step must be > 0");
  Energy total = joules(0.0);
  for (double s = 0.0; s < to_seconds(window); s += to_seconds(step)) {
    const Duration t = start + seconds(s);
    const double dt =
        std::min(to_seconds(step), to_seconds(window) - s);
    total += it_load * seconds(dt) * cooling.pue_at(climate, t);
  }
  return total;
}

namespace climates {

ClimateModel nordic() {
  ClimateModel c;
  c.mean_celsius = 5.0;
  c.seasonal_amplitude = 9.0;
  c.diurnal_amplitude = 4.0;
  return c;
}

ClimateModel temperate() {
  ClimateModel c;
  c.mean_celsius = 14.0;
  c.seasonal_amplitude = 10.0;
  c.diurnal_amplitude = 6.0;
  return c;
}

ClimateModel hot_desert() {
  ClimateModel c;
  c.mean_celsius = 25.0;
  c.seasonal_amplitude = 10.0;
  c.diurnal_amplitude = 9.0;
  return c;
}

}  // namespace climates
}  // namespace sustainai::datacenter
