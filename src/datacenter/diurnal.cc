#include "datacenter/diurnal.h"

#include <cmath>

#include "core/check.h"

namespace sustainai::datacenter {

double DiurnalProfile::utilization_at(Duration t) const {
  check_arg(trough >= 0.0 && trough <= peak && peak <= 1.0,
            "DiurnalProfile: need 0 <= trough <= peak <= 1");
  const double hour = std::fmod(to_seconds(t), kSecondsPerDay) / kSecondsPerHour;
  const double phase = 2.0 * M_PI * (hour - peak_hour) / 24.0;
  return trough + (peak - trough) * 0.5 * (1.0 + std::cos(phase));
}

DiurnalProfile flat_profile(double utilization) {
  check_arg(utilization >= 0.0 && utilization <= 1.0,
            "flat_profile: utilization must be in [0, 1]");
  DiurnalProfile p;
  p.trough = utilization;
  p.peak = utilization;
  p.peak_hour = 0.0;
  return p;
}

}  // namespace sustainai::datacenter
