#include "datacenter/storage.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sustainai::datacenter {

StorageSimResult simulate_storage(const StorageSimConfig& config) {
  check_arg(to_watts(config.datacenter_load) > 0.0,
            "simulate_storage: load must be positive");
  check_arg(config.procurement_ratio >= 0.0,
            "simulate_storage: procurement ratio must be >= 0");
  check_arg(config.battery.round_trip_efficiency > 0.0 &&
                config.battery.round_trip_efficiency <= 1.0,
            "simulate_storage: round-trip efficiency must be in (0, 1]");
  check_arg(to_seconds(config.step) > 0.0,
            "simulate_storage: step must be positive");
  check_arg(to_seconds(config.horizon) >= to_seconds(config.step),
            "simulate_storage: horizon must cover at least one step");

  const IntermittentGrid grid(config.grid);
  // Split round-trip losses evenly between charge and discharge.
  const double one_way_eff = std::sqrt(config.battery.round_trip_efficiency);

  StorageSimResult r;
  r.load_energy = joules(0.0);
  r.renewable_used_direct = joules(0.0);
  r.battery_discharged = joules(0.0);
  r.fossil_energy = joules(0.0);
  r.curtailed = joules(0.0);
  double grid_carbon_g = 0.0;

  double state_of_charge_j = 0.0;  // stored energy (post-charge-loss)
  const double step_s = to_seconds(config.step);
  const auto steps = static_cast<long>(to_seconds(config.horizon) / step_s);

  for (long s = 0; s < steps; ++s) {
    const Duration now = seconds(step_s * static_cast<double>(s));
    const Energy load = config.datacenter_load * config.step;
    r.load_energy += load;

    const double availability = grid.carbon_free_availability(now);
    const Energy renewable =
        config.datacenter_load * config.procurement_ratio * availability *
        config.step;

    const double load_j = to_joules(load);
    const double renewable_j = to_joules(renewable);
    const double direct_j = std::min(load_j, renewable_j);
    r.renewable_used_direct += joules(direct_j);

    double deficit_j = load_j - direct_j;
    double surplus_j = renewable_j - direct_j;

    // Charge from surplus.
    if (surplus_j > 0.0) {
      const double charge_limit_j =
          std::min(surplus_j, to_watts(config.battery.max_charge) * step_s);
      const double room_j =
          to_joules(config.battery.capacity) - state_of_charge_j;
      const double accepted_j =
          std::min(charge_limit_j * one_way_eff, std::max(room_j, 0.0));
      state_of_charge_j += accepted_j;
      const double drawn_j = accepted_j / one_way_eff;
      r.curtailed += joules(surplus_j - drawn_j);
    }

    // Discharge into deficit.
    if (deficit_j > 0.0 && state_of_charge_j > 0.0) {
      const double discharge_limit_j =
          std::min(state_of_charge_j,
                   to_watts(config.battery.max_discharge) * step_s);
      const double delivered_j =
          std::min(deficit_j, discharge_limit_j * one_way_eff);
      state_of_charge_j -= delivered_j / one_way_eff;
      r.battery_discharged += joules(delivered_j);
      deficit_j -= delivered_j;
    }

    // Residual deficit burns the fossil marginal mix.
    if (deficit_j > 0.0) {
      r.fossil_energy += joules(deficit_j);
      grid_carbon_g += deficit_j * config.grid.profile.fossil_marginal.base();
    }
  }

  r.cfe_coverage =
      1.0 - to_joules(r.fossil_energy) / to_joules(r.load_energy);
  r.grid_carbon = grams_co2e(grid_carbon_g);
  const double capacity_kwh = to_kilowatt_hours(config.battery.capacity);
  const CarbonMass battery_total =
      config.battery.embodied_per_kwh * capacity_kwh;
  r.battery_embodied_amortized =
      battery_total * (config.horizon / config.battery.lifetime);
  return r;
}

StorageSimResult simulate_without_storage(StorageSimConfig config) {
  config.battery.capacity = joules(0.0);
  return simulate_storage(config);
}

}  // namespace sustainai::datacenter
