#include "datacenter/fleet_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "core/check.h"

namespace sustainai::datacenter {
namespace {

// ceil/floor restricted to the non-negative server-count domain, written as
// truncating casts so the compiler can keep the autoscaler strip branch-free
// on the SSE2 baseline (no roundpd). Bit-identical to std::ceil/std::floor
// for 0 <= x < 2^63, which AutoScaler::step's int domain guarantees.
inline double ceil_nonneg(double x) {
  const double t = static_cast<double>(static_cast<long long>(x));
  return t + (x > t ? 1.0 : 0.0);
}

inline double floor_nonneg(double x) {
  return static_cast<double>(static_cast<long long>(x));
}

// One (group, chunk) set of lane accumulators: kSections quantities wide.
struct GroupLanes {
  double lane[FleetPartial::kSections][kStepLanes] = {};

  void add(std::size_t q, int l, double v) { lane[q][l] += v; }

  // Rule 2 of the contract: reduce lanes in ascending lane order.
  [[nodiscard]] double reduce(std::size_t q) const {
    double total = 0.0;
    for (int l = 0; l < kStepLanes; ++l) {
      total += lane[q][l];
    }
    return total;
  }
};

enum Section : std::size_t {
  kGroupEnergy = 0,
  kUtilWeight = 1,
  kFreedHours = 2,
  kOppEnergy = 3,
  kOppHours = 4,
  kLocationG = 5,
  kFaultWasted = 6,
  kFaultLost = 7,
};

void flush_group(const GroupLanes& lanes, FleetPartial& out, std::size_t g) {
  out.group_energy_j()[g] += lanes.reduce(kGroupEnergy);
  out.util_weight()[g] += lanes.reduce(kUtilWeight);
  out.freed_hours()[g] += lanes.reduce(kFreedHours);
  out.opp_energy_j()[g] += lanes.reduce(kOppEnergy);
  out.opp_hours()[g] += lanes.reduce(kOppHours);
  out.location_g()[g] += lanes.reduce(kLocationG);
  out.fault_wasted_j()[g] += lanes.reduce(kFaultWasted);
  out.fault_lost_hours()[g] += lanes.reduce(kFaultLost);
}

// ---------------------------------------------------------------------------
// Reference kernel: the original object-based step math (DiurnalProfile,
// AutoScaler, ServerSku), step-outer / group-inner, with the accumulators
// replaced by the lane contract. This is the executable specification the
// SoA kernel is tested against byte for byte.
// ---------------------------------------------------------------------------
FleetPartial reference_chunk(const FleetStepInputs& in, std::size_t begin,
                             std::size_t end) {
  const auto& groups = in.cluster->groups();
  const std::size_t num_groups = groups.size();
  FleetPartial out(num_groups);
  std::vector<GroupLanes> lanes(num_groups);

  const double step_s = in.step_s;
  const Duration step = seconds(step_s);
  const bool any_down = in.down != nullptr && !in.down->empty();

  for (std::size_t s = begin; s < end; ++s) {
    const int l = static_cast<int>((s - begin) % kStepLanes);
    const Duration now = seconds(step_s * static_cast<double>(s));
    const double intensity = in.intensity[s];
    for (std::size_t i = 0; i < num_groups; ++i) {
      const ServerGroup& g = groups[i];
      if (g.count == 0) {
        continue;
      }
      const double demand = g.load.utilization_at(now);
      // Crashed hosts drop out of capacity; the surviving hosts absorb the
      // displaced load, capped at full utilization.
      const int down_now = any_down ? (*in.down)[i][s] : 0;
      int active_count = g.count;
      double active_demand = demand;
      if (down_now > 0) {
        active_count = g.count - down_now;
        active_demand =
            active_count > 0
                ? std::min(1.0, demand * static_cast<double>(g.count) /
                                    static_cast<double>(active_count))
                : 0.0;
        lanes[i].add(kFaultLost, l, down_now * step_s / kSecondsPerHour);
      }
      Energy group_energy = joules(0.0);
      double recorded_util = active_demand;

      if (active_count > 0 && g.autoscalable && in.enable_autoscaler) {
        const AutoScaler::Decision d =
            in.scaler->step(active_count, active_demand);
        group_energy =
            g.sku.energy(d.active_utilization, d.active_utilization, step) *
            static_cast<double>(d.active_servers);
        recorded_util = d.active_utilization;
        lanes[i].add(kFreedHours, l, d.freed_servers * step_s / kSecondsPerHour);
        if (in.opportunistic_training && d.freed_servers > 0) {
          const Energy opp =
              g.sku.energy(in.opportunistic_utilization,
                           in.opportunistic_utilization, step) *
              static_cast<double>(d.freed_servers);
          lanes[i].add(kOppEnergy, l, to_joules(opp));
          lanes[i].add(kOppHours, l, d.freed_servers * step_s / kSecondsPerHour);
          group_energy += opp;
        }
      } else if (active_count > 0) {
        group_energy = g.sku.energy(active_demand, active_demand, step) *
                       static_cast<double>(active_count);
      }
      if (down_now > 0) {
        // Re-warming hosts idle-draw without doing work: pure waste.
        const Energy rewarm =
            g.sku.energy(0.0, 0.0, step) * static_cast<double>(down_now);
        group_energy += rewarm;
        lanes[i].add(kFaultWasted, l, to_joules(rewarm));
      }

      lanes[i].add(kGroupEnergy, l, to_joules(group_energy));
      lanes[i].add(kUtilWeight, l, recorded_util);
      lanes[i].add(kLocationG, l,
                   to_joules(group_energy * in.pue) * intensity);
    }
  }
  for (std::size_t i = 0; i < num_groups; ++i) {
    flush_group(lanes[i], out, i);
  }
  return out;
}

// ---------------------------------------------------------------------------
// SoA kernel: group-outer / step-inner over the precomputed lanes, blocked
// into kStepLanes-wide strips. Every floating-point expression below is the
// reference kernel's tree with per-group constants hoisted; conditional
// contributions are folded branch-free only where the identity is exact
// (x + 0.0 == x and x * 1.0 == x for the non-negative quantities involved),
// so the two kernels agree byte for byte.
// ---------------------------------------------------------------------------

// Per-group constants loaded once per strip loop.
struct GroupConsts {
  double cnt, h_idle, h_span, a_idle, a_span, a_n;
  double idle_e, opp_e, opp_mask, min_active, max_freed;
  double min_active_frac, max_freed_frac;
  double step_s, pue, target;
};

// Whole-server step energy per server at utilization u: the exact
// ServerSku::energy tree with the SKU constants hoisted.
inline double step_energy(const GroupConsts& c, double u) {
  const double pw = (c.h_idle + c.h_span * u) + (c.a_idle + c.a_span * u) * c.a_n;
  return pw * c.step_s;
}

// AutoScaler::step with the integer arithmetic carried in exact integral
// doubles; bounds are passed in so the crash-aware caller can derive them
// from the surviving capacity.
struct ScaleDecision {
  double active, freed, util;
};

inline ScaleDecision scale_step(const GroupConsts& c, double total,
                                double demand, double min_active,
                                double max_freed) {
  const double needed = demand * total / c.target;
  double active = ceil_nonneg(needed);
  active = std::max(active, min_active);
  active = std::max(active, total - max_freed);
  active = std::min(active, total);
  ScaleDecision d;
  d.active = active;
  d.freed = total - active;
  d.util = std::min(1.0, demand * total / std::max(active, 1.0));
  return d;
}

// The four strip bodies: {static, autoscaled} x {fault-free, crash-aware}.
// Each processes one step `s` into lane `l` of `acc`.

inline void static_step(const GroupConsts& c, const double* dem,
                        const double* intensity, std::size_t s, int l,
                        GroupLanes& acc) {
  const double d = dem[s];
  const double ge = step_energy(c, d) * c.cnt;
  acc.add(kGroupEnergy, l, ge);
  acc.add(kUtilWeight, l, d);
  acc.add(kLocationG, l, ge * c.pue * intensity[s]);
}

inline void scaled_step(const GroupConsts& c, const double* dem,
                        const double* intensity, std::size_t s, int l,
                        GroupLanes& acc) {
  const double d = dem[s];
  const ScaleDecision sd =
      scale_step(c, c.cnt, d, c.min_active, c.max_freed);
  const double e_active = step_energy(c, sd.util) * sd.active;
  const double opp = c.opp_e * sd.freed;  // exact +0.0 when harvesting is off
  const double ge = e_active + opp;
  const double fh = sd.freed * c.step_s / kSecondsPerHour;
  acc.add(kGroupEnergy, l, ge);
  acc.add(kUtilWeight, l, sd.util);
  acc.add(kFreedHours, l, fh);
  acc.add(kOppEnergy, l, opp);
  acc.add(kOppHours, l, fh * c.opp_mask);
  acc.add(kLocationG, l, ge * c.pue * intensity[s]);
}

inline void static_step_down(const GroupConsts& c, const double* dem,
                             const double* intensity, const int* down,
                             std::size_t s, int l, GroupLanes& acc) {
  const double d = dem[s];
  const double dn = static_cast<double>(down[s]);
  const double active = c.cnt - dn;  // exact: integral doubles
  const double displaced =
      active > 0.0 ? std::min(1.0, d * c.cnt / active) : 0.0;
  // (d * cnt) / cnt need not round back to d, so the crash-free lane must
  // keep the reference's untouched demand rather than divide through.
  const double ad = dn > 0.0 ? displaced : d;
  const double e_active = active > 0.0 ? step_energy(c, ad) * active : 0.0;
  const double rewarm = c.idle_e * dn;
  const double ge = e_active + rewarm;
  acc.add(kGroupEnergy, l, ge);
  acc.add(kUtilWeight, l, ad);
  acc.add(kLocationG, l, ge * c.pue * intensity[s]);
  acc.add(kFaultWasted, l, rewarm);
  acc.add(kFaultLost, l, dn * c.step_s / kSecondsPerHour);
}

inline void scaled_step_down(const GroupConsts& c, const double* dem,
                             const double* intensity, const int* down,
                             std::size_t s, int l, GroupLanes& acc) {
  const double d = dem[s];
  const double dn = static_cast<double>(down[s]);
  const double active_cap = c.cnt - dn;
  const double displaced =
      active_cap > 0.0 ? std::min(1.0, d * c.cnt / active_cap) : 0.0;
  const double ad = dn > 0.0 ? displaced : d;
  // Bounds derive from the surviving capacity, as AutoScaler::step sees it.
  const double min_active = ceil_nonneg(c.min_active_frac * active_cap);
  const double max_freed = floor_nonneg(c.max_freed_frac * active_cap);
  const ScaleDecision sd =
      scale_step(c, active_cap, ad, min_active, max_freed);
  const bool alive = active_cap > 0.0;
  const double e_active = alive ? step_energy(c, sd.util) * sd.active : 0.0;
  const double opp = alive ? c.opp_e * sd.freed : 0.0;
  const double ge0 = e_active + opp;
  const double rewarm = c.idle_e * dn;
  const double ge = ge0 + rewarm;
  const double fh = alive ? sd.freed * c.step_s / kSecondsPerHour : 0.0;
  const double util = alive ? sd.util : ad;
  acc.add(kGroupEnergy, l, ge);
  acc.add(kUtilWeight, l, util);
  acc.add(kFreedHours, l, fh);
  acc.add(kOppEnergy, l, opp);
  acc.add(kOppHours, l, fh * c.opp_mask);
  acc.add(kLocationG, l, ge * c.pue * intensity[s]);
  acc.add(kFaultWasted, l, rewarm);
  acc.add(kFaultLost, l, dn * c.step_s / kSecondsPerHour);
}

template <typename Body>
inline void run_strips(std::size_t begin, std::size_t end, Body&& body) {
  std::size_t s = begin;
  for (; s + kStepLanes <= end; s += kStepLanes) {
    for (int l = 0; l < kStepLanes; ++l) {
      body(s + static_cast<std::size_t>(l), l);
    }
  }
  for (; s < end; ++s) {
    body(s, static_cast<int>((s - begin) % kStepLanes));
  }
}

FleetPartial soa_chunk(const FleetStepInputs& in, std::size_t begin,
                       std::size_t end) {
  const FleetSoA& soa = *in.soa;
  const std::size_t num_groups = soa.num_groups;
  FleetPartial out(num_groups);
  const bool any_down = in.down != nullptr && !in.down->empty();

  for (std::size_t g = 0; g < num_groups; ++g) {
    if (soa.count[g] == 0.0) {
      continue;
    }
    GroupConsts c;
    c.cnt = soa.count[g];
    c.h_idle = soa.host_idle_w[g];
    c.h_span = soa.host_span_w[g];
    c.a_idle = soa.acc_idle_w[g];
    c.a_span = soa.acc_span_w[g];
    c.a_n = soa.acc_count[g];
    c.idle_e = soa.idle_energy_j[g];
    c.opp_e = soa.opp_energy_j[g];
    c.opp_mask = soa.opp_mask[g];
    c.min_active = soa.min_active[g];
    c.max_freed = soa.max_freed[g];
    c.min_active_frac = soa.min_active_frac;
    c.max_freed_frac = soa.max_freed_frac;
    c.step_s = soa.step_s;
    c.pue = in.pue;
    c.target = soa.target_utilization;

    const double* dem = soa.demand.data() + g * static_cast<std::size_t>(soa.steps);
    const int* down_row = any_down ? (*in.down)[g].data() : nullptr;
    GroupLanes lanes;
    if (soa.autoscaled[g] != 0) {
      if (down_row != nullptr) {
        run_strips(begin, end, [&](std::size_t s, int l) {
          scaled_step_down(c, dem, in.intensity, down_row, s, l, lanes);
        });
      } else {
        run_strips(begin, end, [&](std::size_t s, int l) {
          scaled_step(c, dem, in.intensity, s, l, lanes);
        });
      }
    } else {
      if (down_row != nullptr) {
        run_strips(begin, end, [&](std::size_t s, int l) {
          static_step_down(c, dem, in.intensity, down_row, s, l, lanes);
        });
      } else {
        run_strips(begin, end, [&](std::size_t s, int l) {
          static_step(c, dem, in.intensity, s, l, lanes);
        });
      }
    }
    flush_group(lanes, out, g);
  }
  return out;
}

}  // namespace

FleetPartial::FleetPartial(std::size_t num_groups)
    : num_groups_(num_groups), buf_(kSections * num_groups, 0.0) {}

double FleetPartial::total(const double* section_ptr) const {
  double t = 0.0;
  for (std::size_t g = 0; g < num_groups_; ++g) {
    t += section_ptr[g];
  }
  return t;
}

void FleetPartial::merge(const FleetPartial& other) {
  check_arg(num_groups_ == other.num_groups_,
            "FleetPartial::merge: group count mismatch");
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    buf_[i] += other.buf_[i];
  }
}

void FleetPartial::set_buffer(std::vector<double> buf) {
  check_arg(buf.size() == kSections * num_groups_,
            "FleetPartial::set_buffer: buffer size mismatch");
  buf_ = std::move(buf);
}

FaultProjection project_faults(const fault::FaultPlan& plan,
                               const Cluster& cluster, long steps,
                               double step_s) {
  check_arg(steps >= 0, "project_faults: steps must be >= 0");
  check_arg(step_s > 0.0, "project_faults: step must be positive");
  const auto& groups = cluster.groups();
  FaultProjection proj;
  if (plan.empty()) {
    return proj;
  }
  for (const fault::FaultEvent& e : plan.events()) {
    const auto first =
        static_cast<long>(std::floor(to_seconds(e.time) / step_s));
    const auto last = static_cast<long>(
        std::ceil((to_seconds(e.time) + to_seconds(e.duration)) / step_s));
    if (e.kind == fault::FaultKind::kHostCrash && !groups.empty()) {
      if (proj.down.empty()) {
        proj.down.assign(groups.size(),
                         std::vector<int>(static_cast<std::size_t>(steps), 0));
      }
      const std::size_t gi = static_cast<std::size_t>(
          e.target % static_cast<std::uint64_t>(groups.size()));
      for (long s = std::max(0L, first); s < std::min(steps, last); ++s) {
        auto& d = proj.down[gi][static_cast<std::size_t>(s)];
        d = std::min(groups[gi].count, d + 1);
      }
    } else if (e.kind == fault::FaultKind::kGridDataGap) {
      if (proj.intensity_remap.empty()) {
        proj.intensity_remap.resize(static_cast<std::size_t>(steps));
        for (long s = 0; s < steps; ++s) {
          proj.intensity_remap[static_cast<std::size_t>(s)] = s;
        }
      }
      const long hold = std::clamp(first, 0L, steps - 1);
      for (long s = std::max(0L, first); s < std::min(steps, last); ++s) {
        proj.intensity_remap[static_cast<std::size_t>(s)] =
            proj.intensity_remap[static_cast<std::size_t>(hold)];
      }
    }
  }
  return proj;
}

FleetSoA build_fleet_soa(const Cluster& cluster,
                         const AutoScaler::Config& autoscaler,
                         bool enable_autoscaler, bool opportunistic_training,
                         double opportunistic_utilization, long steps,
                         double step_s) {
  check_arg(steps >= 0, "build_fleet_soa: steps must be >= 0");
  check_arg(step_s > 0.0, "build_fleet_soa: step must be positive");
  const auto& groups = cluster.groups();
  const Duration step = seconds(step_s);

  FleetSoA soa;
  soa.steps = steps;
  soa.step_s = step_s;
  soa.num_groups = groups.size();
  soa.target_utilization = autoscaler.target_utilization;
  soa.min_active_frac = autoscaler.min_active_fraction;
  soa.max_freed_frac = autoscaler.max_freed_fraction;

  const std::size_t n = groups.size();
  soa.count.resize(n);
  soa.host_idle_w.resize(n);
  soa.host_span_w.resize(n);
  soa.acc_idle_w.resize(n);
  soa.acc_span_w.resize(n);
  soa.acc_count.resize(n);
  soa.idle_energy_j.resize(n);
  soa.opp_energy_j.resize(n);
  soa.min_active.resize(n);
  soa.max_freed.resize(n);
  soa.autoscaled.resize(n);
  soa.opp_mask.resize(n);
  soa.demand.assign(n * static_cast<std::size_t>(steps), 0.0);

  // Day-periodic slot cache for the diurnal cosine, reused on exact
  // second-of-day matches only (same scheme as IntensityTable's solar cache).
  long period = std::lround(kSecondsPerDay / step_s);
  constexpr long kMaxSlots = 1L << 20;
  if (period < 1 || period > kMaxSlots ||
      static_cast<double>(period) * step_s != kSecondsPerDay) {
    period = 0;
  }
  std::vector<double> slot_sec;
  std::vector<double> slot_val;

  for (std::size_t g = 0; g < n; ++g) {
    const ServerGroup& grp = groups[g];
    soa.count[g] = static_cast<double>(grp.count);
    const hw::DeviceSpec& host = grp.sku.host();
    const hw::DeviceSpec& acc = grp.sku.accelerator();
    const double h_idle = host.tdp.base() * host.idle_fraction;
    const double a_idle = acc.tdp.base() * acc.idle_fraction;
    soa.host_idle_w[g] = h_idle;
    soa.host_span_w[g] = host.tdp.base() - h_idle;
    soa.acc_idle_w[g] = a_idle;
    soa.acc_span_w[g] = acc.tdp.base() - a_idle;
    soa.acc_count[g] = static_cast<double>(grp.sku.accelerator_count());
    soa.idle_energy_j[g] = to_joules(grp.sku.energy(0.0, 0.0, step));
    const bool scaled = grp.autoscalable && enable_autoscaler;
    soa.autoscaled[g] = scaled ? 1 : 0;
    soa.opp_mask[g] = opportunistic_training ? 1.0 : 0.0;
    soa.opp_energy_j[g] =
        opportunistic_training
            ? to_joules(grp.sku.energy(opportunistic_utilization,
                                       opportunistic_utilization, step))
            : 0.0;
    soa.min_active[g] = std::ceil(autoscaler.min_active_fraction *
                                  static_cast<double>(grp.count));
    soa.max_freed[g] = std::floor(autoscaler.max_freed_fraction *
                                  static_cast<double>(grp.count));

    // Demand row: bit-identical to DiurnalProfile::utilization_at at every
    // step (validated by the first call; the flat shortcut is exact because
    // (peak - trough) == 0 collapses the cosine term to +0.0).
    double* row = soa.demand.data() + g * static_cast<std::size_t>(steps);
    if (steps == 0) {
      continue;
    }
    const DiurnalProfile& load = grp.load;
    const double first = load.utilization_at(seconds(0.0));
    if (load.peak == load.trough) {
      for (long s = 0; s < steps; ++s) {
        row[s] = first;
      }
      continue;
    }
    if (period > 0) {
      slot_sec.assign(static_cast<std::size_t>(period), -1.0);
      slot_val.assign(static_cast<std::size_t>(period), 0.0);
    }
    for (long s = 0; s < steps; ++s) {
      const double t_s = step_s * static_cast<double>(s);
      const double sec_of_day = std::fmod(t_s, kSecondsPerDay);
      double value;
      const auto slot =
          period > 0 ? static_cast<std::size_t>(s % period) : std::size_t{0};
      if (period > 0 && slot_sec[slot] == sec_of_day) {
        value = slot_val[slot];
      } else {
        const double hour = sec_of_day / kSecondsPerHour;
        const double phase = 2.0 * M_PI * (hour - load.peak_hour) / 24.0;
        value =
            load.trough + (load.peak - load.trough) * 0.5 * (1.0 + std::cos(phase));
        if (period > 0) {
          slot_sec[slot] = sec_of_day;
          slot_val[slot] = value;
        }
      }
      row[s] = value;
    }
  }
  return soa;
}

FleetPartial run_fleet_chunk(const FleetStepInputs& in, StepKernel kernel,
                             std::size_t begin, std::size_t end) {
  check_arg(in.cluster != nullptr, "run_fleet_chunk: cluster is required");
  check_arg(in.intensity != nullptr, "run_fleet_chunk: intensity is required");
  if (kernel == StepKernel::kSimd) {
    check_arg(in.soa != nullptr, "run_fleet_chunk: SoA inputs are required");
    return soa_chunk(in, begin, end);
  }
  check_arg(in.scaler != nullptr, "run_fleet_chunk: scaler is required");
  return reference_chunk(in, begin, end);
}

}  // namespace sustainai::datacenter
