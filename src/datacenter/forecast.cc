#include "datacenter/forecast.h"

#include <cmath>
#include <limits>

#include "core/check.h"

namespace sustainai::datacenter {

PersistenceForecaster::PersistenceForecaster(const IntermittentGrid& grid)
    : grid_(grid) {}

PersistenceForecaster::PersistenceForecaster(IntensityTable& table)
    : grid_(table.grid()), table_(&table) {}

CarbonIntensity PersistenceForecaster::actual_at(Duration t) const {
  return table_ != nullptr ? table_->intensity_at(t) : grid_.intensity_at(t);
}

CarbonIntensity PersistenceForecaster::predict(Duration t) const {
  check_arg(to_seconds(t) >= 0.0, "PersistenceForecaster: t must be >= 0");
  const double lag_s = std::max(0.0, to_seconds(t) - kSecondsPerDay);
  return actual_at(seconds(lag_s));
}

CarbonIntensity PersistenceForecaster::predict_mean(Duration start,
                                                    Duration window,
                                                    int steps) const {
  check_arg(steps >= 1, "predict_mean: steps must be >= 1");
  check_arg(to_seconds(window) > 0.0, "predict_mean: window must be positive");
  double sum = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const Duration t = start + window * (static_cast<double>(i) / steps);
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    sum += w * predict(t).base();
  }
  return CarbonIntensity::from_base(sum / steps);
}

double PersistenceForecaster::mape(Duration start, Duration horizon,
                                   Duration step) const {
  check_arg(to_seconds(step) > 0.0, "mape: step must be positive");
  check_arg(to_seconds(horizon) >= to_seconds(step),
            "mape: horizon must cover at least one step");
  double sum = 0.0;
  long count = 0;
  // Indexed stepping: a loop-carried `s += step` accumulates FP error over
  // multi-month horizons and can add or drop a probe near the boundary.
  const double step_sec = to_seconds(step);
  const double horizon_s = to_seconds(horizon);
  for (long i = 0;; ++i) {
    const double s = step_sec * static_cast<double>(i);
    if (s >= horizon_s) {
      break;
    }
    const Duration t = start + seconds(s);
    const double actual = actual_at(t).base();
    if (actual <= 0.0) {
      continue;  // avoid division blow-ups during fully-clean intervals
    }
    sum += std::fabs(predict(t).base() - actual) / actual;
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

PersistenceForecastPolicy::PersistenceForecastPolicy(Duration probe_step)
    : probe_step_(probe_step) {
  check_arg(to_seconds(probe_step_) > 0.0,
            "PersistenceForecastPolicy: probe step must be positive");
}

Duration PersistenceForecastPolicy::choose_start(
    const BatchJob& job, const IntermittentGrid& grid) const {
  IntensityTable table(grid, seconds(0.0), probe_step_);
  return choose_start(job, table);
}

Duration PersistenceForecastPolicy::choose_start(const BatchJob& job,
                                                 IntensityTable& table) const {
  const PersistenceForecaster forecaster(table);
  const double slack_s = to_seconds(job.slack);
  Duration best = job.arrival;
  double best_mean = std::numeric_limits<double>::infinity();
  // Indexed stepping, for the same accumulation-drift reason as mape().
  const double probe_s = to_seconds(probe_step_);
  for (long i = 0;; ++i) {
    const double off = probe_s * static_cast<double>(i);
    if (off > slack_s) {
      break;
    }
    const Duration t = job.arrival + seconds(off);
    const double mean = forecaster.predict_mean(t, job.duration).base();
    if (mean < best_mean) {
      best_mean = mean;
      best = t;
    }
  }
  return best;
}

}  // namespace sustainai::datacenter
