// Energy storage for 24/7 carbon-free computing (Section IV-C).
//
// "Alternatively, energy storage (e.g. batteries, pumped hydro, flywheels,
// molten salt) can be used to store renewable energy during peak generation
// times for use during low generation times. There is an interesting design
// space to achieve 24/7 carbon-free AI computing."
//
// Model: a datacenter draws a constant load; procured renewable generation
// follows the grid's time-varying carbon-free availability. Surplus charges
// a battery (bounded by power and capacity, with round-trip losses);
// deficits discharge it; whatever remains comes from the fossil marginal
// mix. The simulation reports the hourly carbon-free coverage, the grid
// carbon, and the battery's own amortized manufacturing carbon — the
// complete trade the paper gestures at.
#pragma once

#include "core/carbon_intensity.h"
#include "core/units.h"

namespace sustainai::datacenter {

struct BatteryConfig {
  Energy capacity = megawatt_hours(10.0);
  Power max_charge = megawatts(5.0);
  Power max_discharge = megawatts(5.0);
  double round_trip_efficiency = 0.86;  // Li-ion class
  // Manufacturing footprint per kWh of capacity (Li-ion LCA band).
  CarbonMass embodied_per_kwh = kg_co2e(75.0);
  Duration lifetime = years(10.0);
};

struct StorageSimConfig {
  IntermittentGrid::Config grid;
  Power datacenter_load = megawatts(10.0);
  // Procured renewable nameplate as a multiple of the load (over-build).
  double procurement_ratio = 1.5;
  BatteryConfig battery;
  Duration horizon = days(30.0);
  Duration step = minutes(15.0);
};

struct StorageSimResult {
  Energy load_energy;
  Energy renewable_used_direct;
  Energy battery_discharged;
  Energy fossil_energy;
  Energy curtailed;  // renewable generation neither used nor stored
  // Fraction of consumption met carbon-free on a time-matched basis.
  double cfe_coverage = 0.0;
  CarbonMass grid_carbon;
  // Battery manufacturing carbon amortized over the simulated horizon.
  CarbonMass battery_embodied_amortized;
  [[nodiscard]] CarbonMass total_carbon() const {
    return grid_carbon + battery_embodied_amortized;
  }
};

// Time-stepped charge/dispatch simulation; greedy self-consumption policy
// (direct renewable first, then battery, then fossil grid).
[[nodiscard]] StorageSimResult simulate_storage(const StorageSimConfig& config);

// Convenience: the same scenario without a battery (capacity 0).
[[nodiscard]] StorageSimResult simulate_without_storage(StorageSimConfig config);

}  // namespace sustainai::datacenter
