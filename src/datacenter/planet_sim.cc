#include "datacenter/planet_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <utility>

#include "core/check.h"
#include "engine/snapshot.h"
#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sustainai::datacenter {

namespace {

constexpr const char* kCheckpointSchema = "sustainai-planet-checkpoint-v1";
constexpr const char* kCheckpointContext = "planet checkpoint";

}  // namespace

PlanetSimulator::PlanetSimulator(Config config)
    : config_(std::move(config)), scaler_(config_.autoscaler) {
  check_arg(!config_.regions.empty(),
            "PlanetSimulator: at least one region is required");
  check_arg(to_seconds(config_.step) > 0.0,
            "PlanetSimulator: step must be positive");
  check_arg(to_seconds(config_.horizon) >= to_seconds(config_.step),
            "PlanetSimulator: horizon must cover at least one step");
  check_arg(config_.opportunistic_utilization >= 0.0 &&
                config_.opportunistic_utilization <= 1.0,
            "PlanetSimulator: opportunistic utilization must be in [0, 1]");
  check_arg(config_.steps_per_chunk >= 1,
            "PlanetSimulator: steps_per_chunk must be >= 1");

  step_s_ = to_seconds(config_.step);
  steps_ = static_cast<long>(to_seconds(config_.horizon) / step_s_);
  // Interior chunk boundaries stay on lane-block multiples, exactly like
  // FleetSimulator's plan (chunk_align = kStepLanes), so a 1-region planet
  // reproduces the fleet's chunk fold bit-for-bit.
  steps_per_chunk_ =
      (config_.steps_per_chunk + kStepLanes - 1) / kStepLanes * kStepLanes;

  if (config_.intensity_cache != nullptr) {
    cache_ = config_.intensity_cache;
  } else {
    owned_cache_ = std::make_unique<IntensityCache>();
    cache_ = owned_cache_.get();
  }

  regions_.reserve(config_.regions.size());
  for (const RegionConfig& rc : config_.regions) {
    check_arg(!rc.cluster.groups().empty(),
              "PlanetSimulator: region needs at least one server group");
    check_arg(rc.pue >= 1.0, "PlanetSimulator: region PUE must be >= 1.0");
    check_arg(rc.cfe_coverage >= 0.0 && rc.cfe_coverage <= 1.0,
              "PlanetSimulator: region CFE coverage must be in [0, 1]");
    check_arg(rc.utc_offset_hours >= 0.0 && rc.utc_offset_hours < 24.0,
              "PlanetSimulator: utc_offset_hours must be in [0, 24)");

    RegionState st;
    const double offset_s = rc.utc_offset_hours * kSecondsPerHour;
    st.offset_steps = std::lround(offset_s / step_s_);
    check_arg(static_cast<double>(st.offset_steps) * step_s_ == offset_s,
              "PlanetSimulator: utc_offset_hours must be a whole number of "
              "steps");

    // Rebase each group's diurnal peak to the region's local solar time.
    // Offset zero copies the cluster untouched so the peak-hour doubles stay
    // bit-identical to a standalone FleetSimulator over the same cluster.
    if (st.offset_steps == 0) {
      st.shifted_cluster = rc.cluster;
    } else {
      for (ServerGroup group : rc.cluster.groups()) {
        group.load.peak_hour =
            std::fmod(group.load.peak_hour - rc.utc_offset_hours + 48.0, 24.0);
        st.shifted_cluster.add_group(std::move(group));
      }
    }

    st.plan = rc.faults.enabled() ? rc.faults.plan(config_.horizon)
                                  : fault::FaultPlan();
    st.projection = project_faults(st.plan, st.shifted_cluster, steps_, step_s_);

    // Prebuild through horizon + offset: the region reads the shared table
    // at [offset, offset + steps). Intensity pointers are resolved in a
    // second pass below, after every prebuild-extension has happened.
    st.shared = cache_->get(rc.grid, config_.step, steps_ + st.offset_steps);

    if (config_.kernel == StepKernel::kSimd) {
      st.soa = build_fleet_soa(st.shifted_cluster, config_.autoscaler,
                               config_.enable_autoscaler,
                               config_.opportunistic_training,
                               config_.opportunistic_utilization, steps_,
                               step_s_);
    }
    for (const ServerGroup& group : st.shifted_cluster.groups()) {
      if (group.tier == Tier::kAiTraining) {
        st.train_servers += static_cast<double>(group.count);
      }
    }
    regions_.push_back(std::move(st));
  }

  // Second pass: every shared table is now fully extended (a later region's
  // larger prebuild would have reallocated raw() storage), so the direct
  // pointers are stable for the simulator's lifetime.
  for (RegionState& st : regions_) {
    if (st.projection.any_gap()) {
      const double* raw = st.shared->table.raw();
      st.gap_lane.resize(static_cast<std::size_t>(steps_));
      for (long s = 0; s < steps_; ++s) {
        st.gap_lane[static_cast<std::size_t>(s)] =
            raw[st.projection.intensity_remap[static_cast<std::size_t>(s)] +
                st.offset_steps];
      }
      st.intensity = st.gap_lane.data();
    } else {
      st.intensity = st.shared->table.raw() + st.offset_steps;
    }
  }

  engine::ShardedRun<FleetPartial>::Config rcfg;
  rcfg.steps = steps_;
  rcfg.steps_per_chunk = steps_per_chunk_;
  rcfg.chunk_align = kStepLanes;
  rcfg.shards = regions_.size();
  rcfg.pool = config_.pool;
  rcfg.topology = engine::ShardedRun<FleetPartial>::Topology::kShardMajor;
  rcfg.step_seconds = step_s_;
  rcfg.context = kCheckpointContext;
  rcfg.segment_span = "planet.segment";
  rcfg.shard_span = "planet.shard";
  runner_ = engine::ShardedRun<FleetPartial>(rcfg);
}

std::size_t PlanetSimulator::distinct_intensity_tables() const {
  std::unordered_set<const SharedIntensityTable*> distinct;
  for (const RegionState& st : regions_) {
    distinct.insert(st.shared.get());
  }
  return distinct.size();
}

long PlanetSimulator::checkpoint_stride_steps(
    const fault::CheckpointPolicy& policy) const {
  const double interval_s = to_seconds(policy.interval);
  if (interval_s <= 0.0) {
    return 0;
  }
  const long stride = static_cast<long>(std::ceil(interval_s / step_s_));
  const long chunks = std::max(1L, (stride + steps_per_chunk_ - 1) / steps_per_chunk_);
  return chunks * steps_per_chunk_;
}

PlanetSimulator::Checkpoint PlanetSimulator::start() const {
  Checkpoint cp;
  cp.next_step = 0;
  cp.region_partials.reserve(regions_.size());
  for (const RegionState& st : regions_) {
    cp.region_partials.emplace_back(st.shifted_cluster.groups().size());
  }
  return cp;
}

FleetStepInputs PlanetSimulator::inputs_for(const RegionState& st) const {
  FleetStepInputs in;
  in.cluster = &st.shifted_cluster;
  in.scaler = &scaler_;
  in.soa = config_.kernel == StepKernel::kSimd ? &st.soa : nullptr;
  in.enable_autoscaler = config_.enable_autoscaler;
  in.opportunistic_training = config_.opportunistic_training;
  in.opportunistic_utilization = config_.opportunistic_utilization;
  in.step_s = step_s_;
  in.intensity = st.intensity;
  in.down = st.projection.any_down() ? &st.projection.down : nullptr;
  return in;
}

void PlanetSimulator::advance(Checkpoint& cp, long max_steps) const {
  const long begin = cp.next_step;
  const long end = runner_.segment_end(begin, max_steps);
  if (end <= begin) {
    return;
  }
  const long cpc = steps_per_chunk_;
  const long c0 = begin / cpc;
  const long windows = (end + cpc - 1) / cpc - c0;

  // Per-(region, window) facility energy and location carbon, written by
  // the owning region's chunk only; merged across regions serially below.
  std::vector<std::vector<double>> window_energy(
      regions_.size(), std::vector<double>(static_cast<std::size_t>(windows), 0.0));
  std::vector<std::vector<double>> window_carbon(
      regions_.size(), std::vector<double>(static_cast<std::size_t>(windows), 0.0));

  // The engine drives segmentation and the per-region ascending chunk fold;
  // the cell runs one fleet chunk, the observer extracts the window series.
  runner_.advance(
      cp.next_step, cp.region_partials, max_steps,
      [&](std::size_t r, long b, long e) -> FleetPartial {
        FleetStepInputs in = inputs_for(regions_[r]);
        in.pue = config_.regions[r].pue;
        return run_fleet_chunk(in, config_.kernel, static_cast<std::size_t>(b),
                               static_cast<std::size_t>(e));
      },
      [&](std::size_t r, long c, const FleetPartial& partial) {
        window_energy[r][static_cast<std::size_t>(c - c0)] =
            partial.total(partial.group_energy_j()) * config_.regions[r].pue;
        window_carbon[r][static_cast<std::size_t>(c - c0)] =
            partial.total(partial.location_g());
      });

  // Cross-region series merge: ascending region order per window, appended
  // in window order — a serial left-to-right fold, thread-count-free.
  for (long w = 0; w < windows; ++w) {
    const long b = (c0 + w) * cpc;
    const long e = std::min(steps_, b + cpc);
    SeriesSample sample;
    sample.t_begin_s = step_s_ * static_cast<double>(b);
    sample.t_end_s = step_s_ * static_cast<double>(e);
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      sample.facility_energy_j += window_energy[r][static_cast<std::size_t>(w)];
      sample.location_carbon_g += window_carbon[r][static_cast<std::size_t>(w)];
    }
    cp.series.push_back(sample);
  }
}

void PlanetSimulator::finalize_into(const Checkpoint& cp, Result& result) const {
  check_arg(cp.next_step == steps_,
            "PlanetSimulator::finalize: checkpoint has not reached the horizon");
  check_arg(cp.region_partials.size() == regions_.size(),
            "PlanetSimulator::finalize: checkpoint region count mismatch");

  result = Result();
  result.regions.reserve(regions_.size());
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const RegionConfig& rc = config_.regions[r];
    const RegionState& st = regions_[r];
    const FleetPartial& total = cp.region_partials[r];
    const auto& groups = st.shifted_cluster.groups();

    RegionResult region;
    region.name = rc.name;
    const double* group_energy = total.group_energy_j();
    // Per-tier sums accumulate in group order (the fleet's convention).
    for (std::size_t i = 0; i < groups.size(); ++i) {
      region.tier_it_energy[static_cast<std::size_t>(groups[i].tier)] +=
          joules(group_energy[i]);
    }
    region.it_energy = joules(total.total(group_energy));
    region.facility_energy = region.it_energy * rc.pue;
    region.location_carbon = grams_co2e(total.total(total.location_g()));
    region.market_carbon = market_based(region.location_carbon, rc.cfe_coverage);
    region.opportunistic_energy = joules(total.total(total.opp_energy_j()));
    region.opportunistic_server_hours = total.total(total.opp_hours());
    if (rc.faults.enabled()) {
      FleetSimulator::FaultStats& fs = region.faults;
      fs.host_crashes = st.plan.count(fault::FaultKind::kHostCrash);
      fs.grid_gaps = st.plan.count(fault::FaultKind::kGridDataGap);
      fs.lost_server_hours = total.total(total.fault_lost_hours());
      fs.wasted_energy = joules(total.total(total.fault_wasted_j()));
      finish_fault_stats(
          st.plan, rc.faults, config_.horizon, st.train_servers,
          region.tier_it_energy[static_cast<std::size_t>(Tier::kAiTraining)],
          fs);
    }

    // Planetary totals: a deterministic left-to-right fold in region order.
    result.it_energy += region.it_energy;
    result.facility_energy += region.facility_energy;
    result.location_carbon += region.location_carbon;
    result.market_carbon += region.market_carbon;
    result.opportunistic_energy += region.opportunistic_energy;
    result.opportunistic_server_hours += region.opportunistic_server_hours;
    for (std::size_t t = 0; t < kNumTiers; ++t) {
      result.tier_it_energy[t] += region.tier_it_energy[t];
    }
    result.regions.push_back(std::move(region));
  }
  result.series = cp.series;

  // Recorded post-merge on the calling thread, deterministic at any thread
  // count (the fleet's convention for metrics).
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.counter("planet_it_energy_joules").add(to_joules(result.it_energy));
  metrics.counter("planet_facility_energy_joules")
      .add(to_joules(result.facility_energy));
  metrics.counter("planet_location_carbon_grams")
      .add(to_grams_co2e(result.location_carbon));
  metrics.counter("planet_opportunistic_server_hours")
      .add(result.opportunistic_server_hours);
  for (const RegionResult& region : result.regions) {
    metrics
        .counter("planet_region_it_energy_joules", {{"region", region.name}})
        .add(to_joules(region.it_energy));
  }
}

PlanetSimulator::Result PlanetSimulator::finalize(const Checkpoint& cp) const {
  Result result;
  finalize_into(cp, result);
  return result;
}

PlanetSimulator::Result PlanetSimulator::run() const {
  obs::Span run_span("planet.run", 0.0,
                     step_s_ * static_cast<double>(steps_));
  Checkpoint cp = start();
  advance(cp, steps_);
  return finalize(cp);
}

report::JsonValue PlanetSimulator::checkpoint_json(const Checkpoint& cp) const {
  report::JsonValue root = runner_.state_json(
      cp.next_step, cp.region_partials, kCheckpointSchema, config_digest(),
      "regions");
  report::JsonValue series = report::JsonValue::array();
  for (const SeriesSample& s : cp.series) {
    report::JsonValue sample = report::JsonValue::object();
    sample.set("t_begin_s", report::JsonValue::number(s.t_begin_s));
    sample.set("t_end_s", report::JsonValue::number(s.t_end_s));
    sample.set("facility_energy_j",
               report::JsonValue::number(s.facility_energy_j));
    sample.set("location_carbon_g",
               report::JsonValue::number(s.location_carbon_g));
    series.append(std::move(sample));
  }
  root.set("series", std::move(series));
  return root;
}

PlanetSimulator::Checkpoint PlanetSimulator::parse_checkpoint(
    const report::JsonValue& value) const {
  engine::ShardState<FleetPartial> state = runner_.parse_state(
      value, kCheckpointSchema, config_digest(), "regions",
      [this](std::size_t r) {
        return FleetPartial(regions_[r].shifted_cluster.groups().size());
      });

  Checkpoint cp;
  cp.next_step = state.next_step;
  cp.region_partials = std::move(state.shards);

  const report::JsonValue& series =
      engine::require_member(value, "series", kCheckpointContext);
  check_arg(series.is_array(), "planet checkpoint: series must be an array");
  cp.series.reserve(series.items().size());
  for (const report::JsonValue& s : series.items()) {
    check_arg(s.is_object(), "planet checkpoint: series samples must be objects");
    SeriesSample sample;
    sample.t_begin_s = engine::require_number(s, "t_begin_s", kCheckpointContext);
    sample.t_end_s = engine::require_number(s, "t_end_s", kCheckpointContext);
    sample.facility_energy_j =
        engine::require_number(s, "facility_energy_j", kCheckpointContext);
    sample.location_carbon_g =
        engine::require_number(s, "location_carbon_g", kCheckpointContext);
    cp.series.push_back(sample);
  }
  return cp;
}

std::string PlanetSimulator::config_digest() const {
  engine::ConfigDigest d;
  d.add_double(step_s_);
  d.add_long(steps_);
  d.add_long(steps_per_chunk_);
  d.add_long(static_cast<long>(config_.kernel));
  d.add_long(config_.enable_autoscaler ? 1 : 0);
  d.add_long(config_.opportunistic_training ? 1 : 0);
  d.add_double(config_.opportunistic_utilization);
  d.add_double(config_.autoscaler.target_utilization);
  d.add_double(config_.autoscaler.min_active_fraction);
  d.add_double(config_.autoscaler.max_freed_fraction);
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const RegionConfig& rc = config_.regions[r];
    const RegionState& st = regions_[r];
    d.add_string(rc.name);
    d.add_string(IntensityCache::key_of(rc.grid, config_.step));
    d.add_long(st.offset_steps);
    d.add_double(rc.pue);
    d.add_double(rc.cfe_coverage);
    digest_fault_spec(d, rc.faults);
    digest_cluster(d, rc.cluster);
  }
  return d.hex();
}

}  // namespace sustainai::datacenter
