#include "datacenter/capacity_planner.h"

#include <cmath>

#include "core/check.h"

namespace sustainai::datacenter {
namespace {

struct Cohort {
  int bought_period = 0;
  int count = 0;
  double per_server_capacity = 1.0;
};

CapacityPlanResult run_plan(const CapacityPlanConfig& config,
                            bool buy_ahead) {
  check_arg(!config.demand_per_period.empty(),
            "capacity plan: demand series must be non-empty");
  check_arg(config.efficiency_growth_per_period >= 1.0,
            "capacity plan: efficiency growth must be >= 1");
  check_arg(config.server_life_periods >= 1,
            "capacity plan: server life must be >= 1 period");

  CapacityPlanResult result;
  result.total_embodied = grams_co2e(0.0);
  result.total_operational = grams_co2e(0.0);
  std::vector<Cohort> fleet;

  const auto periods = static_cast<int>(config.demand_per_period.size());
  for (int p = 0; p < periods; ++p) {
    // Retire cohorts past their service life.
    std::erase_if(fleet, [&](const Cohort& c) {
      return p - c.bought_period >= config.server_life_periods;
    });

    double capacity = 0.0;
    int fleet_size = 0;
    for (const Cohort& c : fleet) {
      capacity += c.count * c.per_server_capacity;
      fleet_size += c.count;
    }

    const double demand = config.demand_per_period[static_cast<std::size_t>(p)];
    double target = demand;
    if (buy_ahead && p == 0) {
      target = config.demand_per_period.back();
    }

    PeriodPlan plan;
    plan.period = p;
    plan.demand = demand;
    const double gen_capacity =
        std::pow(config.efficiency_growth_per_period, p);
    if (capacity < target && (!buy_ahead || p == 0)) {
      plan.servers_bought = static_cast<int>(
          std::ceil((target - capacity) / gen_capacity));
      fleet.push_back(Cohort{p, plan.servers_bought, gen_capacity});
      capacity += plan.servers_bought * gen_capacity;
      fleet_size += plan.servers_bought;
      plan.embodied_purchased =
          config.server_embodied * static_cast<double>(plan.servers_bought);
    }
    plan.fleet_size = fleet_size;
    plan.capacity = capacity;

    // Operational carbon of the in-service fleet for one period.
    const Energy it_energy = config.server_power * config.period *
                             static_cast<double>(fleet_size);
    plan.operational = it_energy * config.pue * config.grid.average;

    result.total_embodied += plan.embodied_purchased;
    result.total_operational += plan.operational;
    result.periods.push_back(plan);
  }
  return result;
}

}  // namespace

CapacityPlanResult plan_just_in_time(const CapacityPlanConfig& config) {
  return run_plan(config, /*buy_ahead=*/false);
}

CapacityPlanResult plan_buy_ahead(const CapacityPlanConfig& config) {
  return run_plan(config, /*buy_ahead=*/true);
}

}  // namespace sustainai::datacenter
