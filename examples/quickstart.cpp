// Quickstart: measure and report the carbon footprint of a (simulated)
// training job with the CarbonTracker telemetry API.
//
//   1. pick a grid + PUE -> OperationalCarbonModel
//   2. drive a simulated GPU through an EnergyMeter (RAPL/NVML-style)
//   3. feed measured energy into a CarbonTracker
//   4. print the carbon impact statement the paper asks every model to ship
#include <cstdio>

#include "core/operational.h"
#include "telemetry/energy_meter.h"
#include "telemetry/nvml_sim.h"
#include "telemetry/rapl_sim.h"
#include "telemetry/tracker.h"

int main() {
  using namespace sustainai;

  // Accounting assumptions: hyperscale PUE, US-average grid, and
  // Facebook-style 100% market-based renewable matching.
  const OperationalCarbonModel operational(kHyperscalePue, grids::us_average(),
                                           /*cfe_coverage=*/1.0);
  telemetry::CarbonTracker tracker({operational, /*embodied_utilization=*/0.45});

  // A training host: one CPU package + 8 V100s, metered like real telemetry
  // tools meter RAPL MSRs and NVML counters.
  telemetry::RaplPackageSim cpu({});
  std::vector<telemetry::NvmlDeviceSim> gpus(8, telemetry::NvmlDeviceSim(
                                                    hw::catalog::nvidia_v100()));
  telemetry::EnergyMeter meter;
  meter.attach("cpu-package", cpu.package());
  meter.attach("cpu-dram", cpu.dram());
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    meter.attach("gpu" + std::to_string(i), gpus[i]);
  }

  // Simulate a 2-day training run at ~55% GPU utilization, sampling the
  // counters once a minute (the usual telemetry cadence).
  const Duration run_length = days(2.0);
  const Duration tick = minutes(1.0);
  for (double t = 0.0; t < to_seconds(run_length); t += to_seconds(tick)) {
    cpu.advance(0.40, tick);
    for (auto& gpu : gpus) {
      gpu.set_utilization(0.55);
      gpu.advance(tick);
    }
    meter.sample_all();
  }

  // Record the measured energy and the device occupancy for embodied
  // amortization, then print the impact statement.
  tracker.record_energy(Phase::kTraining, meter.total());
  tracker.record_embodied(Phase::kTraining, hw::catalog::nvidia_v100(),
                          run_length, static_cast<int>(gpus.size()));

  std::printf("%s\n", tracker.impact_statement("quickstart-training-run").c_str());
  std::printf("meter sources: %zu, samples taken: %d\n", meter.labels().size(),
              meter.sample_count());
  std::printf("gpu0 energy: %s, cpu package energy: %s\n",
              to_string(meter.total("gpu0")).c_str(),
              to_string(meter.total("cpu-package")).c_str());
  return 0;
}
