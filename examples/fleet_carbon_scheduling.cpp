// Scenario: a week in a datacenter region — diurnal web load with
// Auto-Scaling harvesting off-peak capacity for opportunistic training, and
// carbon-aware scheduling of deferrable training jobs against an
// intermittent solar-heavy grid (Sections III-C and IV-C).
#include <cstdio>

#include "datacenter/fleet_sim.h"
#include "datacenter/scheduler.h"
#include "report/table.h"

int main() {
  using namespace sustainai;
  using namespace sustainai::datacenter;

  // --- Fleet: web tier + AI training tier --------------------------------
  Cluster cluster;
  ServerGroup web;
  web.name = "web-tier";
  web.sku = hw::skus::web_tier();
  web.count = 2000;
  web.tier = Tier::kWeb;
  web.load = DiurnalProfile{0.35, 0.90, 20.0};
  web.autoscalable = true;
  cluster.add_group(web);

  ServerGroup training;
  training.name = "ai-training";
  training.sku = hw::skus::gpu_training_8x();
  training.count = 100;
  training.tier = Tier::kAiTraining;
  training.load = flat_profile(0.55);
  cluster.add_group(training);

  FleetSimulator::Config cfg;
  cfg.cluster = cluster;
  cfg.grid.profile = grids::us_west_solar();
  cfg.grid.solar_share = 0.5;
  cfg.grid.wind_share = 0.15;
  cfg.grid.firm_share = 0.10;
  cfg.horizon = days(7.0);

  std::printf("One week of fleet simulation (%d servers)\n\n",
              cluster.total_servers());
  report::Table t({"configuration", "IT energy", "facility energy",
                   "location carbon", "harvested server-hours"});
  for (bool autoscale : {false, true}) {
    FleetSimulator::Config c = cfg;
    c.enable_autoscaler = autoscale;
    c.opportunistic_training = autoscale;
    const auto r = FleetSimulator(c).run();
    t.add_row({autoscale ? "auto-scaling + opportunistic" : "static",
               to_string(r.it_energy), to_string(r.facility_energy),
               to_string(r.location_carbon),
               report::fmt(r.opportunistic_server_hours)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // --- Carbon-aware scheduling of deferrable training ---------------------
  std::printf("Carbon-aware scheduling of 24 deferrable training jobs\n\n");
  const IntermittentGrid grid(cfg.grid);
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 24; ++i) {
    BatchJob j;
    j.id = "retrain-" + std::to_string(i);
    j.power = kilowatts(22.4);  // one 8-GPU training host at ~80%
    j.duration = hours(4.0);
    j.arrival = hours(static_cast<double>(i % 24));
    j.slack = hours(20.0);
    jobs.push_back(j);
  }

  const FifoPolicy fifo;
  const ThresholdPolicy threshold(grams_per_kwh(200.0));
  const ForecastPolicy forecast;
  report::Table s({"policy", "carbon", "mean delay (h)", "peak power"});
  double fifo_g = 0.0;
  for (const SchedulerPolicy* p :
       std::initializer_list<const SchedulerPolicy*>{&fifo, &threshold,
                                                     &forecast}) {
    const ScheduleResult r = run_schedule(jobs, grid, *p);
    if (p == &fifo) {
      fifo_g = to_grams_co2e(r.total_carbon);
    }
    s.add_row({r.policy_name, to_string(r.total_carbon),
               report::fmt(to_hours(r.mean_delay)),
               to_string(r.peak_concurrent_power)});
  }
  std::printf("%s\n", s.to_string().c_str());

  const ScheduleResult best = run_schedule(jobs, grid, forecast);
  std::printf(
      "Forecast-based shifting into the solar window cuts job carbon by "
      "%.0f%%, at the cost of %.1f h mean delay and higher peak concurrent "
      "power (the over-provisioning trade-off of Section IV-C).\n",
      (1.0 - to_grams_co2e(best.total_carbon) / fifo_g) * 100.0,
      to_hours(best.mean_delay));
  return 0;
}
