// Scenario: a week in a datacenter region — diurnal web load with
// Auto-Scaling harvesting off-peak capacity for opportunistic training, and
// carbon-aware scheduling of deferrable training jobs against an
// intermittent solar-heavy grid (Sections III-C and IV-C).
//
// Driven through the scenario engine: each configuration is a declarative
// JSON spec executed by scenario::Runner, and every number printed below is
// read back from the run's base-unit JSON report — the same artifact
// `sustainai run` writes to disk.
#include <cstdio>
#include <string>

#include "core/units.h"
#include "report/table.h"
#include "scenario/runner.h"

namespace {

using namespace sustainai;

double field(const scenario::RunResult& r, const char* key) {
  return r.report.find(key)->as_number();
}

// The fleet: a 2000-server web tier with the paper's diurnal swing plus a
// 100-host 8-GPU training tier, simulated for one week.
std::string fleet_spec(bool autoscale) {
  const char* flag = autoscale ? "true" : "false";
  return std::string(R"({
    "scenario": "fleet",
    "params": {
      "days": 7,
      "web_servers": 2000,
      "train_servers": 100,
      "train_utilization": 0.55,
      "web_load": {"trough": 0.35, "peak": 0.9, "peak_hour": 20},
      "grid": {"name": "us-west-solar"},
      "autoscaler": )") +
         flag + ", \"opportunistic\": " + flag + "}}";
}

// 24 deferrable retraining jobs sliding within a 20 h slack window on the
// same solar-heavy grid, under one slot policy.
std::string schedule_spec(const std::string& policy) {
  return std::string(R"({
    "scenario": "cross_region_schedule",
    "params": {
      "jobs": 24,
      "power_kw": 22.4,
      "duration_h": 4,
      "slack_h": 20,
      "policy": ")") +
         policy + R"(",
      "threshold_g_per_kwh": 200,
      "regions": [{"name": "us-west-solar"}]
    }
  })";
}

}  // namespace

int main() {
  const scenario::Runner runner;

  // --- Fleet: web tier + AI training tier --------------------------------
  std::printf("One week of fleet simulation (%d servers)\n\n", 2000 + 100);
  report::Table t({"configuration", "IT energy", "facility energy",
                   "location carbon", "harvested server-hours"});
  for (bool autoscale : {false, true}) {
    const scenario::Bundle b = runner.run_text(fleet_spec(autoscale));
    t.add_row({autoscale ? "auto-scaling + opportunistic" : "static",
               to_string(Energy::from_base(field(b.result, "it_energy_j"))),
               to_string(Energy::from_base(field(b.result, "facility_energy_j"))),
               to_string(CarbonMass::from_base(field(b.result, "location_carbon_g"))),
               report::fmt(field(b.result, "opportunistic_server_hours"))});
  }
  std::printf("%s\n", t.to_string().c_str());

  // --- Carbon-aware scheduling of deferrable training ---------------------
  std::printf("Carbon-aware scheduling of 24 deferrable training jobs\n\n");
  report::Table s({"policy", "carbon", "mean delay (h)", "peak power"});
  double fifo_g = 0.0;
  double best_g = 0.0;
  double best_delay_h = 0.0;
  for (const std::string policy : {"fifo", "threshold", "forecast"}) {
    const scenario::Bundle b = runner.run_text(schedule_spec(policy));
    const double carbon_g = field(b.result, "total_carbon_g");
    const double delay_h = to_hours(Duration::from_base(field(b.result, "mean_delay_s")));
    if (policy == "fifo") {
      fifo_g = carbon_g;
    }
    if (policy == "forecast") {
      best_g = carbon_g;
      best_delay_h = delay_h;
    }
    s.add_row({policy, to_string(CarbonMass::from_base(carbon_g)),
               report::fmt(delay_h),
               to_string(Power::from_base(field(b.result, "peak_power_w")))});
  }
  std::printf("%s\n", s.to_string().c_str());

  std::printf(
      "Forecast-based shifting into the solar window cuts job carbon by "
      "%.0f%%, at the cost of %.1f h mean delay and higher peak concurrent "
      "power (the over-provisioning trade-off of Section IV-C).\n",
      (1.0 - best_g / fifo_g) * 100.0, best_delay_h);
  return 0;
}
