// Scenario: generate the machine-readable artifacts a sustainability
// dashboard would ingest (Section V-A telemetry, made adoptable): run a
// fleet week with the tracer on, and emit a Chrome trace, Prometheus-style
// metrics, JSON and CSV reports to /tmp. Also demonstrates the polling
// EnergyMeter over simulated RAPL counters, including per-window reset.
#include <cstdio>
#include <string>

#include "datacenter/fleet_sim.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/csv.h"
#include "report/table.h"
#include "telemetry/energy_meter.h"
#include "telemetry/rapl_sim.h"
#include "telemetry/tracker.h"

namespace {

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(text.c_str(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  using namespace sustainai;
  using namespace sustainai::datacenter;

  // Observe the whole run: spans from the fleet simulator and exec layer,
  // counters from the carbon tracker. Cleared first so repeated runs of
  // this example produce the same artifacts.
  obs::Tracer::global().clear();
  obs::Tracer::global().set_enabled(true);
  obs::MetricsRegistry::global().clear();

  // A small region: web tier + training tier on a solar-heavy grid.
  FleetSimulator::Config cfg;
  ServerGroup web;
  web.name = "web";
  web.sku = hw::skus::web_tier();
  web.count = 500;
  web.tier = Tier::kWeb;
  web.load = DiurnalProfile{0.35, 0.9, 20.0};
  web.autoscalable = true;
  cfg.cluster.add_group(web);
  ServerGroup train;
  train.name = "training";
  train.sku = hw::skus::gpu_training_8x();
  train.count = 40;
  train.tier = Tier::kAiTraining;
  train.load = flat_profile(0.55);
  cfg.cluster.add_group(train);
  cfg.grid.profile = grids::us_west_solar();
  cfg.grid.solar_share = 0.5;
  cfg.grid.firm_share = 0.1;
  cfg.horizon = days(7.0);

  const auto result = FleetSimulator(cfg).run();

  // Feed the measured energy into the tracker and export.
  telemetry::CarbonTracker tracker(
      {OperationalCarbonModel(cfg.pue, cfg.grid.profile, 1.0), 0.45});
  tracker.record_energy(Phase::kTraining,
                        result.it_energy_for(Tier::kAiTraining));
  tracker.record_embodied(Phase::kTraining, hw::catalog::nvidia_v100(),
                          days(7.0) * 0.55, 40 * 8);

  const std::string json = tracker.impact_json("weekly-fleet-report");
  const std::string json_path = "/tmp/sustainai_weekly.json";
  const bool json_ok = write_file(json_path, json);

  report::CsvWriter csv({"group", "tier", "it_energy_kwh",
                         "mean_utilization", "freed_server_hours"});
  for (const auto& g : result.groups) {
    csv.add_row({g.name, to_string(g.tier),
                 report::fmt(to_kilowatt_hours(g.it_energy)),
                 report::fmt(g.mean_utilization),
                 report::fmt(g.freed_server_hours)});
  }
  const std::string csv_path = "/tmp/sustainai_weekly.csv";
  const bool csv_ok = csv.write_file(csv_path);

  // Dashboard ingestion artifacts: the deterministic sim-time trace (open
  // in Perfetto / chrome://tracing) and the Prometheus text exposition.
  obs::Tracer::global().set_enabled(false);
  const std::string trace = obs::chrome_trace_json(obs::Tracer::global().collect());
  const std::string metrics =
      obs::prometheus_text(obs::MetricsRegistry::global().snapshot());
  const std::string trace_path = "/tmp/sustainai_trace.json";
  const std::string metrics_path = "/tmp/sustainai_metrics.prom";
  const bool trace_ok = write_file(trace_path, trace);
  const bool metrics_ok = write_file(metrics_path, metrics);

  // EnergyMeter demo: the same polling pipeline a host agent runs against
  // RAPL MSRs. Two measurement windows over one package; reset() between
  // them so each window's totals stand alone.
  telemetry::RaplPackageSim rapl({});
  telemetry::EnergyMeter meter;
  meter.attach("pkg0", rapl.package());
  meter.attach("dram0", rapl.dram());
  auto run_window = [&](double utilization, int seconds) {
    for (int s = 0; s < seconds; ++s) {
      rapl.advance(utilization, sustainai::seconds(1.0));
      meter.sample_all();
    }
  };
  run_window(0.9, 60);  // busy minute
  const double busy_pkg = to_joules(meter.total("pkg0"));
  const double busy_all = to_joules(meter.total());
  meter.reset();
  run_window(0.1, 60);  // idle minute, measured from zero again
  const double idle_pkg = to_joules(meter.total("pkg0"));
  const double idle_all = to_joules(meter.total());
  const bool unknown_label_absent = !meter.find_total("gpu0").has_value();

  std::printf("Weekly fleet report\n");
  std::printf("  IT energy:        %s\n", to_string(result.it_energy).c_str());
  std::printf("  facility energy:  %s (PUE %.2f)\n",
              to_string(result.facility_energy).c_str(), cfg.pue);
  std::printf("  location carbon:  %s\n",
              to_string(result.location_carbon).c_str());
  std::printf("  harvested:        %.0f opportunistic server-hours\n",
              result.opportunistic_server_hours);
  std::printf("  JSON written to:  %s (%zu bytes, %s)\n", json_path.c_str(),
              json.size(), json_ok ? "ok" : "FAILED");
  std::printf("  CSV written to:   %s (%s)\n", csv_path.c_str(),
              csv_ok ? "ok" : "FAILED");
  std::printf("  trace written to: %s (%zu bytes, %s)\n", trace_path.c_str(),
              trace.size(), trace_ok ? "ok" : "FAILED");
  std::printf("  metrics written:  %s (%zu bytes, %s)\n", metrics_path.c_str(),
              metrics.size(), metrics_ok ? "ok" : "FAILED");

  std::printf("\nRAPL meter (two windows, reset between)\n");
  std::printf("  busy minute @90%%: pkg %.1f J, all sources %.1f J\n",
              busy_pkg, busy_all);
  std::printf("  idle minute @10%%: pkg %.1f J, all sources %.1f J\n",
              idle_pkg, idle_all);
  std::printf("  unknown label 'gpu0' -> %s\n",
              unknown_label_absent ? "nullopt (as expected)" : "UNEXPECTED hit");

  std::printf("\nJSON preview:\n%.300s...\n", json.c_str());
  return 0;
}
