// Scenario: generate the machine-readable artifacts a sustainability
// dashboard would ingest (Section V-A telemetry, made adoptable): run a
// fleet week, track it, and emit JSON + CSV reports to /tmp.
#include <cstdio>

#include "datacenter/fleet_sim.h"
#include "report/csv.h"
#include "report/table.h"
#include "telemetry/tracker.h"

int main() {
  using namespace sustainai;
  using namespace sustainai::datacenter;

  // A small region: web tier + training tier on a solar-heavy grid.
  FleetSimulator::Config cfg;
  ServerGroup web;
  web.name = "web";
  web.sku = hw::skus::web_tier();
  web.count = 500;
  web.tier = Tier::kWeb;
  web.load = DiurnalProfile{0.35, 0.9, 20.0};
  web.autoscalable = true;
  cfg.cluster.add_group(web);
  ServerGroup train;
  train.name = "training";
  train.sku = hw::skus::gpu_training_8x();
  train.count = 40;
  train.tier = Tier::kAiTraining;
  train.load = flat_profile(0.55);
  cfg.cluster.add_group(train);
  cfg.grid.profile = grids::us_west_solar();
  cfg.grid.solar_share = 0.5;
  cfg.grid.firm_share = 0.1;
  cfg.horizon = days(7.0);

  const auto result = FleetSimulator(cfg).run();

  // Feed the measured energy into the tracker and export.
  telemetry::CarbonTracker tracker(
      {OperationalCarbonModel(cfg.pue, cfg.grid.profile, 1.0), 0.45});
  tracker.record_energy(Phase::kTraining,
                        result.it_energy_for(Tier::kAiTraining));
  tracker.record_embodied(Phase::kTraining, hw::catalog::nvidia_v100(),
                          days(7.0) * 0.55, 40 * 8);

  const std::string json = tracker.impact_json("weekly-fleet-report");
  const std::string json_path = "/tmp/sustainai_weekly.json";
  {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f != nullptr) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
    }
  }

  report::CsvWriter csv({"group", "tier", "it_energy_kwh",
                         "mean_utilization", "freed_server_hours"});
  for (const auto& g : result.groups) {
    csv.add_row({g.name, to_string(g.tier),
                 report::fmt(to_kilowatt_hours(g.it_energy)),
                 report::fmt(g.mean_utilization),
                 report::fmt(g.freed_server_hours)});
  }
  const std::string csv_path = "/tmp/sustainai_weekly.csv";
  const bool csv_ok = csv.write_file(csv_path);

  std::printf("Weekly fleet report\n");
  std::printf("  IT energy:        %s\n", to_string(result.it_energy).c_str());
  std::printf("  facility energy:  %s (PUE %.2f)\n",
              to_string(result.facility_energy).c_str(), cfg.pue);
  std::printf("  location carbon:  %s\n",
              to_string(result.location_carbon).c_str());
  std::printf("  harvested:        %.0f opportunistic server-hours\n",
              result.opportunistic_server_hours);
  std::printf("  JSON written to:  %s (%zu bytes)\n", json_path.c_str(),
              json.size());
  std::printf("  CSV written to:   %s (%s)\n", csv_path.c_str(),
              csv_ok ? "ok" : "FAILED");
  std::printf("\nJSON preview:\n%.300s...\n", json.c_str());
  return 0;
}
