// Scenario: carbon-aware neural architecture search (Section IV-B).
// Compare search strategies on cost, then select the deployment
// configuration multi-objectively — with serving carbon in the cost
// function instead of accuracy alone.
#include <cstdio>

#include "core/operational.h"
#include "mlcycle/model_zoo.h"
#include "optim/nas_hpo.h"
#include "optim/pareto.h"
#include "report/table.h"

int main() {
  using namespace sustainai;
  using namespace sustainai::optim;

  const SearchSimulator sim(SearchSimulator::Config{
      .num_candidates = 400,
      .full_training_gpu_days = 8.0,
      .quality_mean = 0.72,
      .quality_stddev = 0.05,
      .observation_noise = 0.01,
      .seed = 4242,
  });
  const mlcycle::AccountingContext ctx = mlcycle::default_accounting();

  std::printf("Search-strategy cost (400 candidates, 8 GPU-days full training)\n\n");
  report::Table t({"strategy", "GPU-days", "search tCO2e", "best top-1",
                   "overhead vs 1 training"});
  const auto report_strategy = [&](const char* name, const SearchOutcome& o) {
    t.add_row({name, report::fmt(o.total_gpu_days),
               report::fmt(to_tonnes_co2e(
                   ctx.operational_carbon_of_gpu_days(o.total_gpu_days))),
               report::fmt(o.best_quality),
               report::fmt_factor(o.overhead_factor(8.0))});
  };
  report_strategy("grid search", sim.run_grid());
  report_strategy("random-64", sim.run_random(64));
  report_strategy("successive halving", sim.run_successive_halving());
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "(Strubell et al.'s grid-search NAS at 4789 trials ~ %.0fx overhead — "
      "the paper's \"over 3000x\".)\n\n",
      nas_overhead_factor(4789, 0.64));

  // Multi-objective deployment choice: serving carbon as a first-class
  // objective next to accuracy.
  std::vector<ObjectivePoint> points;
  for (const Candidate& c : sim.candidates()) {
    points.push_back({c.inference_cost, c.final_quality, ""});
  }
  const auto frontier = pareto_frontier(points);
  double best_quality = 0.0;
  for (const auto& p : points) {
    best_quality = std::max(best_quality, p.quality);
  }
  const std::size_t apex = cheapest_at_least(points, best_quality);
  const std::size_t green = cheapest_at_least(points, best_quality - 0.01);

  std::printf("Deployment selection (%zu Pareto-optimal of %zu candidates)\n\n",
              frontier.size(), points.size());
  report::Table s({"pick", "top-1", "relative serving cost"});
  s.add_row({"accuracy-only", report::fmt(points[apex].quality),
             report::fmt(points[apex].cost)});
  s.add_row({"green (within 0.01 of best)", report::fmt(points[green].quality),
             report::fmt(points[green].cost)});
  std::printf("%s\n", s.to_string().c_str());
  std::printf(
      "Accepting a 0.01 accuracy sacrifice cuts serving cost %.0f%% — over "
      "trillions of daily predictions that is the difference the paper "
      "wants leaderboards to expose.\n",
      (1.0 - points[green].cost / points[apex].cost) * 100.0);
  return 0;
}
