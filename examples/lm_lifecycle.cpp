// Scenario: the full lifecycle of the LM universal-translation model —
// data processing, experimentation, training, inference — before and after
// the cross-stack optimization cascade of Figure 7.
#include <cstdio>

#include "core/equivalence.h"
#include "mlcycle/model_zoo.h"
#include "optim/cascade.h"
#include "report/table.h"

int main() {
  using namespace sustainai;

  const mlcycle::AccountingContext ctx = mlcycle::default_accounting();
  const auto models = mlcycle::production_models(ctx);
  const mlcycle::ProductionModel& lm = mlcycle::find_model(models, "LM");

  std::printf("LM lifecycle footprint (%s)\n\n", lm.description.c_str());
  const LifecycleFootprint fp = lm.footprint(ctx);
  report::Table t({"phase", "energy", "operational", "embodied", "share"});
  for (Phase phase : kAllPhases) {
    const PhaseFootprint& f = fp.phase(phase);
    t.add_row({to_string(phase), to_string(f.energy), to_string(f.operational),
               to_string(f.embodied),
               report::fmt_percent(fp.operational_share(phase))});
  }
  std::printf("%s\n", t.to_string().c_str());

  const PhaseFootprint total = fp.total();
  std::printf("total: %s (~%.0f passenger-vehicle miles)\n\n",
              to_string(total.total()).c_str(),
              to_passenger_vehicle_miles(total.total()));

  // Apply the Figure 7 serving cascade to LM's inference energy: this is
  // the 800x+ story of Section III-B.
  const optim::OptimizationCascade cascade = optim::lm_serving_cascade();
  const Energy inference_now = fp.phase(Phase::kInference).energy;
  // Back out what serving would have cost on the unoptimized CPU baseline.
  const Energy cpu_baseline = inference_now * cascade.cumulative_gain();
  std::printf("Counterfactual: unoptimized CPU serving would need %s "
              "(vs %s today, %.0fx saved)\n",
              to_string(cpu_baseline).c_str(), to_string(inference_now).c_str(),
              cascade.cumulative_gain());
  report::Table steps({"optimization", "gain", "serving energy after"});
  const auto energies = cascade.energy_after_each_step(cpu_baseline);
  for (std::size_t i = 0; i < cascade.steps().size(); ++i) {
    steps.add_row({cascade.steps()[i].name,
                   report::fmt_factor(cascade.steps()[i].gain),
                   to_string(energies[i])});
  }
  std::printf("%s\n", steps.to_string().c_str());

  // What the optimization is worth in carbon terms per analysis window.
  const CarbonMass saved =
      ctx.operational.location_based(cpu_baseline - inference_now);
  std::printf("carbon avoided per %.0f-day window: %s (~%.0f US home-years)\n",
              to_days(ctx.analysis_window), to_string(saved).c_str(),
              to_us_home_years(saved));
  return 0;
}
