// Scenario: should a small personalization model train on-device
// (federated learning) or in the datacenter? Reproduces the Figure 11
// decision problem end-to-end: simulate a 90-day FL campaign over a
// heterogeneous client population, estimate its footprint with the paper's
// methodology, and compare against centralized baselines.
#include <cstdio>

#include "fl/round_sim.h"
#include "report/table.h"

int main() {
  using namespace sustainai;

  fl::FlApplicationConfig app;
  app.name = "keyboard-personalization";
  app.model_size = megabytes(20.0);
  app.reference_compute_time = minutes(4.0);
  app.clients_per_round = 100;
  app.rounds_per_day = 24.0;
  app.campaign = days(90.0);

  fl::Population::Config population;
  population.num_clients = 10000;

  const fl::RoundSimulator sim(app, population);
  const auto log = sim.run();
  const fl::FlFootprint fp =
      fl::estimate_footprint(app.name, log, fl::default_fl_assumptions());

  std::printf("Federated campaign: %d rounds, %zu client participations\n\n",
              sim.total_rounds(), log.size());
  report::Table t({"metric", "value"});
  t.add_row({"device compute energy", to_string(fp.compute_energy)});
  t.add_row({"wireless communication energy", to_string(fp.communication_energy)});
  t.add_row({"communication share", report::fmt_percent(fp.communication_share())});
  t.add_row({"energy wasted by dropouts", report::fmt_percent(fp.wasted_fraction)});
  t.add_row({"carbon", to_string(fp.carbon)});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("Centralized alternatives (Transformer-Big class training):\n\n");
  report::Table b({"baseline", "energy", "carbon", "vs FL"});
  for (const auto& base : fl::figure11_baselines()) {
    b.add_row({base.name, to_string(base.training_energy),
               to_string(base.carbon),
               report::fmt_factor(to_grams_co2e(fp.carbon) /
                                  to_grams_co2e(base.carbon))});
  }
  std::printf("%s\n", b.to_string().c_str());

  std::printf(
      "Takeaways (Section IV-C):\n"
      "  * the \"small\" FL task emits carbon comparable to centralized\n"
      "    training of a much larger model;\n"
      "  * ~%.0f%% of the edge energy is wireless communication — optimize\n"
      "    communication, not just client compute;\n"
      "  * renewable procurement rescues the datacenter baselines but not\n"
      "    the edge, where the residential grid mix applies.\n",
      fp.communication_share() * 100.0);
  return 0;
}
