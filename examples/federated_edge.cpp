// Scenario: should a small personalization model train on-device
// (federated learning) or in the datacenter? Reproduces the Figure 11
// decision problem end-to-end: simulate a 90-day FL campaign over a
// heterogeneous client population, estimate its footprint with the paper's
// methodology, and compare against centralized baselines.
//
// Driven through the scenario engine: the campaign is a declarative JSON
// spec executed by scenario::Runner, and every number printed below is read
// back from the run's base-unit JSON report — the same artifact
// `sustainai run` writes to disk.
#include <cstdio>

#include "core/units.h"
#include "report/json.h"
#include "report/table.h"
#include "scenario/runner.h"

namespace {

using namespace sustainai;

constexpr const char* kCampaignSpec = R"({
  "scenario": "fl_rounds",
  "params": {
    "name": "keyboard-personalization",
    "model_mb": 20,
    "compute_min": 4,
    "clients_per_round": 100,
    "rounds_per_day": 24,
    "days": 90
  }
})";

double field(const scenario::RunResult& r, const char* key) {
  return r.report.find(key)->as_number();
}

}  // namespace

int main() {
  const scenario::Bundle bundle = scenario::Runner().run_text(kCampaignSpec);
  const scenario::RunResult& r = bundle.result;

  const CarbonMass fl_carbon = CarbonMass::from_base(field(r, "carbon_g"));
  const double comm_share = field(r, "communication_share");

  std::printf("Federated campaign: %d rounds, %zu client participations\n\n",
              static_cast<int>(field(r, "rounds")),
              static_cast<std::size_t>(field(r, "log_entries")));
  report::Table t({"metric", "value"});
  t.add_row({"device compute energy",
             to_string(Energy::from_base(field(r, "compute_energy_j")))});
  t.add_row({"wireless communication energy",
             to_string(Energy::from_base(field(r, "communication_energy_j")))});
  t.add_row({"communication share", report::fmt_percent(comm_share)});
  t.add_row({"energy wasted by dropouts",
             report::fmt_percent(field(r, "wasted_fraction"))});
  t.add_row({"carbon", to_string(fl_carbon)});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("Centralized alternatives (Transformer-Big class training):\n\n");
  report::Table b({"baseline", "energy", "carbon", "vs FL"});
  for (const report::JsonValue& base : r.report.find("baselines")->items()) {
    const CarbonMass base_carbon =
        CarbonMass::from_base(base.find("carbon_g")->as_number());
    b.add_row({base.find("name")->as_string(),
               to_string(Energy::from_base(
                   base.find("training_energy_j")->as_number())),
               to_string(base_carbon),
               report::fmt_factor(to_grams_co2e(fl_carbon) /
                                  to_grams_co2e(base_carbon))});
  }
  std::printf("%s\n", b.to_string().c_str());

  std::printf(
      "Takeaways (Section IV-C):\n"
      "  * the \"small\" FL task emits carbon comparable to centralized\n"
      "    training of a much larger model;\n"
      "  * ~%.0f%% of the edge energy is wireless communication — optimize\n"
      "    communication, not just client compute;\n"
      "  * renewable procurement rescues the datacenter baselines but not\n"
      "    the edge, where the residential grid mix applies.\n",
      comm_share * 100.0);
  return 0;
}
